"""The ``repro bench`` sweep runner.

A sweep is a list of independent :class:`BenchJob` cells (kernel x
fu-config x backend).  Each job rebuilds its kernel from scratch,
pipelines it, and reports a :class:`~repro.bench.artifact.BenchRecord`
with per-stage wall-clock.  Jobs share nothing, so ``--jobs N`` fans
them out across a ``multiprocessing`` pool; scheduling is fully
deterministic, which makes the parallel sweep produce *identical*
speedups to the sequential one (asserted in the tests).

Backends:

``grip``
    Perfect Pipelining driven by the GRiP scheduler (the paper's
    system); analytic Table-1 speedup.
``post``
    The POST baseline (infinite-resource pipelining + repack).
``vm``
    GRiP schedule lowered to VLIW bundles and executed on the bundle
    VM with a differential check -- adds realized-cycle columns, at
    simulation cost.

Kernels that compile to a :class:`~repro.ir.loops.LoopProgram`
(``SYNWHL``/``SYNSEQ``: while loops, sequenced loops) run through
:func:`~repro.pipelining.program.schedule_program`; their ``speedup``
is the *measured* whole-program cycle ratio (there is no analytic II
for a trip-count-unknown loop) and POST -- defined only for single
counted loops -- is skipped for them by :func:`make_jobs`.
"""

from __future__ import annotations

import multiprocessing
import platform
import sys
import time
from dataclasses import dataclass

from .artifact import BenchArtifact, BenchRecord

BACKENDS = ("grip", "post", "vm")

#: Fast subset exercising every backend *and* both kernel families:
#: CI smoke and unit tests.  SYNRED covers carried-scalar reduction,
#: SYNCND covers if-converted conditionals, SYNWHL the non-counted
#: (while) program flow (grip+vm only; POST is skipped for it),
#: SYNNEST the while-in-for nest path and SYNFUS the pass pipeline's
#: hoist + fusion + slack-motion transforms (also program-flow only).
SMOKE_KERNELS = ("LL1", "LL3", "SYNRED", "SYNCND", "SYNWHL", "SYNNEST",
                 "SYNFUS")
SMOKE_FUS = (2, 4)
SMOKE_BACKENDS = ("grip", "post", "vm")


@dataclass(frozen=True)
class BenchJob:
    """One independent sweep cell (picklable for the worker pool)."""

    kernel: str
    fus: int
    backend: str
    unroll: int
    family: str = "ll"
    #: attach a DecisionJournal tracer and embed its tallies + top
    #: blocked candidates into the record (observe-only: schedules and
    #: speedups are bit-identical, only wall-clock moves)
    profile: bool = False
    #: schedule-cache directory (None disables).  Warm cells replay
    #: the stored schedule; their records are bit-identical to cold
    #: ones except the schedule-stage wall-clock, which reports the
    #: lookup cost.  Profiled cells ignore the cache (a warm hit has
    #: no decision stream to journal, and profile cells exist to
    #: journal one).
    cache: str | None = None
    #: schedule policy as a plain JSON-able dict
    #: (:meth:`~repro.scheduling.policy.SchedulePolicy.to_dict`), so
    #: jobs stay picklable AND serializable through ``repro serve``
    #: payloads unchanged.  None means DEFAULT_POLICY.  POST cells
    #: ignore it (POST predates the policy surface and has no GRiP
    #: knobs to steer).
    policy: dict | None = None


_CACHES: dict[str, object] = {}


def _cache_for(path: str | None):
    """Per-process schedule-cache handles, one per directory."""
    if path is None:
        return None
    cache = _CACHES.get(path)
    if cache is None:
        from ..cache import ScheduleCache

        cache = _CACHES[path] = ScheduleCache(path)
    return cache


def _job_cache(job: BenchJob):
    return None if job.profile else _cache_for(job.cache)


def default_unroll(fus: int, scale: int = 3) -> int:
    """The Table-1 unroll policy (see ``benchmarks/conftest.py``)."""
    return max(12, scale * fus)


def make_jobs(kernels, fu_configs, backends, *,
              unroll_scale: int = 3, profile: bool = False,
              cache: str | None = None) -> list[BenchJob]:
    from .. import workloads
    from ..workloads.synth import is_program_kernel

    jobs = []
    for name in kernels:
        family = workloads.family_of(name)
        if family is None:
            raise ValueError(f"unknown kernel {name!r}")
        program_shaped = family == "synth" and is_program_kernel(name)
        for fus in fu_configs:
            for backend in backends:
                if backend not in BACKENDS:
                    raise ValueError(f"unknown backend {backend!r}")
                if backend == "post" and program_shaped:
                    # POST is defined for single counted loops only;
                    # there is no program-level POST baseline to record.
                    continue
                jobs.append(BenchJob(kernel=name, fus=fus, backend=backend,
                                     unroll=default_unroll(fus, unroll_scale),
                                     family=family, profile=profile,
                                     cache=cache))
    return jobs


def smoke_jobs(unroll_scale: int = 3, *, profile: bool = False,
               cache: str | None = None) -> list[BenchJob]:
    return make_jobs(SMOKE_KERNELS, SMOKE_FUS, SMOKE_BACKENDS,
                     unroll_scale=unroll_scale, profile=profile, cache=cache)


def _make_tracer(job: BenchJob):
    """A DecisionJournal for profiled cells, None otherwise.

    ``keep_events=False``: bench cells only need the tallies and the
    blocked-candidate index, not the full event stream.
    """
    if not job.profile:
        return None
    from ..obs import DecisionJournal

    return DecisionJournal(keep_events=False)


def _profile_payload(tracer) -> dict | None:
    if tracer is None:
        return None
    return {"journal": tracer.tallies(),
            "top_blocked": tracer.top_blocked(5)}


def _job_policy(job: BenchJob):
    """The job's SchedulePolicy (None when default) and its fingerprint."""
    from ..scheduling.policy import DEFAULT_POLICY, SchedulePolicy

    if job.policy is None:
        return None, DEFAULT_POLICY.fingerprint()
    policy = SchedulePolicy.from_dict(job.policy)
    return policy, policy.fingerprint()


def run_job(job: BenchJob) -> BenchRecord:
    """Execute one sweep cell (top-level: must be pool-picklable)."""
    from .. import api
    from ..ir.loops import LoopProgram
    from ..machine import MachineConfig
    from ..pipelining import pipeline_loop_post
    from ..workloads import build_kernel

    machine = MachineConfig(fus=job.fus)
    stages: dict[str, float] = {}

    t0 = time.perf_counter()
    loop = build_kernel(job.kernel, job.unroll)
    stages["build"] = time.perf_counter() - t0

    if isinstance(loop, LoopProgram):
        return _run_program_job(job, loop, machine, stages)

    if job.backend == "post":
        t1 = time.perf_counter()
        res = pipeline_loop_post(loop, machine, unroll=job.unroll)
        stages["pipeline"] = time.perf_counter() - t1
        return BenchRecord(
            kernel=job.kernel, fus=job.fus, backend=job.backend,
            unroll=job.unroll, ops_per_iteration=loop.ops_per_iteration,
            speedup=res.speedup, ii=res.initiation_interval,
            converged=res.converged, periodic=res.periodic, stages=stages,
            family=job.family)

    tracer = _make_tracer(job)
    policy, policy_fp = _job_policy(job)
    t1 = time.perf_counter()
    res = api.schedule(
        loop, machine,
        options=api.ScheduleOptions(unroll=job.unroll, measure=False,
                                    policy=policy),
        cache=_job_cache(job), tracer=tracer)
    stages["pipeline"] = time.perf_counter() - t1
    stages["schedule"] = res.schedule.seconds
    record = BenchRecord(
        kernel=job.kernel, fus=job.fus, backend=job.backend,
        unroll=job.unroll, ops_per_iteration=loop.ops_per_iteration,
        speedup=res.speedup, ii=res.initiation_interval,
        converged=res.converged, periodic=res.periodic, stages=stages,
        moves=res.schedule.stats.moves,
        resource_blocks=res.schedule.stats.resource_blocks,
        candidate_builds=res.schedule.candidate_builds,
        family=job.family,
        analysis_counters=dict(res.schedule.analysis_counters),
        profile=_profile_payload(tracer),
        policy_fingerprint=policy_fp)

    if job.backend == "vm":
        from ..backend import differential_check

        t2 = time.perf_counter()
        rep = differential_check(res.unwound.graph, machine)
        stages["vm"] = time.perf_counter() - t2
        record.realized_cycles = rep.realized_cycles
        record.vm_steps = rep.vm_steps[-1]
        seq = loop.ops_per_iteration * res.unwound.iterations
        record.realized_speedup = (seq / rep.realized_cycles
                                   if rep.realized_cycles else None)
    return record


def _run_program_job(job: BenchJob, program, machine,
                     stages: dict[str, float]) -> BenchRecord:
    """One sweep cell for a LoopProgram-shaped kernel (grip / vm)."""
    from .. import api

    if job.backend == "post":  # pragma: no cover - filtered by make_jobs
        raise ValueError(
            f"POST has no program-level baseline for {job.kernel!r}")
    tracer = _make_tracer(job)
    policy, policy_fp = _job_policy(job)
    t1 = time.perf_counter()
    res = api.schedule(
        program, machine,
        options=api.ScheduleOptions(unroll=job.unroll, measure=True,
                                    seeds=(0,), policy=policy),
        cache=_job_cache(job), tracer=tracer)
    stages["pipeline"] = time.perf_counter() - t1
    scheds = [seg.schedule for seg in res.segments
              if seg.schedule is not None]
    stages["schedule"] = sum(s.seconds for s in scheds)
    counters: dict[str, int] = {}
    for s in scheds:
        for key, val in s.analysis_counters.items():
            counters[key] = counters.get(key, 0) + val
    record = BenchRecord(
        kernel=job.kernel, fus=job.fus, backend=job.backend,
        unroll=job.unroll, ops_per_iteration=program.ops_per_iteration,
        speedup=res.speedup, ii=None,
        converged=res.converged, periodic=res.periodic, stages=stages,
        moves=sum(s.stats.moves for s in scheds) if scheds else None,
        resource_blocks=(sum(s.stats.resource_blocks for s in scheds)
                         if scheds else None),
        candidate_builds=(sum(s.candidate_builds for s in scheds)
                          if scheds else None),
        family=job.family,
        analysis_counters=counters if scheds else None,
        profile=_profile_payload(tracer),
        policy_fingerprint=policy_fp)

    if job.backend == "vm":
        from ..backend import differential_check
        from ..backend.check import realized_program_pair

        t2 = time.perf_counter()
        rep = differential_check(res.graph, machine)
        # A while segment's trip count is data-dependent, so the
        # realized-speedup ratio must pair sequential and VM runs of
        # the SAME initial state (see realized_program_pair).
        seq_cycles, vm_res = realized_program_pair(
            program.graph, res.graph, rep.program)
        stages["vm"] = time.perf_counter() - t2
        record.realized_cycles = vm_res.cycles
        record.vm_steps = vm_res.steps
        record.realized_speedup = (seq_cycles / vm_res.cycles
                                   if vm_res.cycles else None)
    return record


def run_jobs(jobs: list[BenchJob], *, processes: int = 1) -> list[BenchRecord]:
    """Run the sweep, fanning out over a worker pool when asked.

    ``pool.map`` preserves job order, so the records of a parallel run
    line up one-for-one with a sequential run of the same job list.
    """
    if processes <= 1 or len(jobs) <= 1:
        return [run_job(j) for j in jobs]
    with multiprocessing.Pool(processes=min(processes, len(jobs))) as pool:
        return pool.map(run_job, jobs, chunksize=1)


def artifact_from_records(jobs: list[BenchJob], records: list[BenchRecord],
                          *, name: str, processes: int,
                          wall_seconds: float,
                          config: dict | None = None) -> BenchArtifact:
    """Wrap sweep records in a named artifact (local pool OR a remote
    ``repro serve`` front produce the same artifact shape)."""
    cfg = {
        "kernels": sorted({j.kernel for j in jobs}),
        "families": sorted({j.family for j in jobs}),
        "fus": sorted({j.fus for j in jobs}),
        "backends": sorted({j.backend for j in jobs}),
        "jobs": processes,
    }
    if config:
        cfg.update(config)
    return BenchArtifact(
        name=name, records=records, config=cfg,
        host={"python": platform.python_version(),
              "platform": sys.platform},
        wall_seconds=wall_seconds, created=time.time())


def run_bench(jobs: list[BenchJob], *, name: str = "table1",
              processes: int = 1, config: dict | None = None
              ) -> BenchArtifact:
    """Run ``jobs`` and wrap the records in a named artifact."""
    t0 = time.perf_counter()
    records = run_jobs(jobs, processes=processes)
    wall = time.perf_counter() - t0
    return artifact_from_records(jobs, records, name=name,
                                 processes=processes, wall_seconds=wall,
                                 config=config)
