"""Machine-readable benchmark artifacts (``BENCH_*.json``).

One :class:`BenchArtifact` captures a full ``repro bench`` sweep:
per-(kernel, fus, backend) records with schedule speedups, realized VM
cycles and per-stage wall-clock, plus enough configuration metadata to
reproduce the run.  Artifacts round-trip losslessly through JSON and
feed two consumers:

* the perf trajectory -- committed artifacts under ``results/``
  document how scheduling cost and speedups move across PRs;
* the regression gate -- :func:`diff_artifacts` compares a fresh sweep
  against a previous artifact and flags speedup drops beyond a relative
  tolerance (wall-clock is reported but never gated on: CI machines
  jitter, schedules should not).

Schema (``schema`` = 1)::

    {
      "schema": 1,
      "kind": "repro-bench",
      "name": "table1",
      "created": 1753776000.0,          # unix time of the sweep
      "config": {"kernels": [...], "fus": [...], "backends": [...],
                  "unroll_scale": 3, "jobs": 4},
      "host": {"python": "3.11.9", "platform": "linux"},
      "wall_seconds": 12.34,            # whole-sweep wall-clock
      "records": [
        {"kernel": "LL1", "fus": 4, "backend": "grip", "unroll": 12,
         "ops_per_iteration": 5, "speedup": 4.0, "ii": 1.25,
         "converged": true, "periodic": true,
         "stages": {"build": 0.01, "pipeline": 0.42, "schedule": 0.40},
         "moves": 476, "resource_blocks": 162, "candidate_builds": 289,
         "realized_cycles": null, "vm_steps": null,
         "realized_speedup": null, "family": "ll",
         "analysis_counters": {"rpo_rebuilds": 3, ...},
         "profile": {"journal": {...}, "top_blocked": [...]}}
      ]
    }

``family`` ("ll" | "synth") is additive within schema 1: readers
default it to "ll" when absent, so pre-PR-4 artifacts stay loadable.
Also additive (PR 6, same rule -- absent reads back as null):

* ``analysis_counters`` -- the scheduler's per-run
  ``ScheduleResult.analysis_counters`` deltas (incremental-analysis
  rebuild/patch counts; summed over segments for program kernels;
  null for POST, which never runs GRiP);
* ``profile`` -- only with ``repro bench --profile``: the decision
  journal's ``tallies()`` plus its top blocked candidates, keyed
  ``{"journal": {...}, "top_blocked": [...]}``.  Profiling attaches a
  :class:`~repro.obs.journal.DecisionJournal` tracer, which by the
  tracer contract never changes the schedule (speedups stay
  bit-identical; only wall-clock moves).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..reporting import SpeedupTable

SCHEMA_VERSION = 1
ARTIFACT_KIND = "repro-bench"

#: backend name -> Table-1 system label
SYSTEM_LABELS = {"grip": "GRiP", "post": "POST", "vm": "VM"}


@dataclass
class BenchRecord:
    """One (kernel, fus, backend) measurement."""

    kernel: str
    fus: int
    backend: str                     # "grip" | "post" | "vm"
    unroll: int
    ops_per_iteration: int
    speedup: float | None            # analytic Table-1 metric
    ii: float | None                 # initiation interval (cycles/iter)
    converged: bool
    periodic: bool                   # exact row periodicity found
    stages: dict[str, float] = field(default_factory=dict)
    # GRiP scheduling cost counters (None for other backends)
    moves: int | None = None
    resource_blocks: int | None = None
    candidate_builds: int | None = None
    # bundle-VM measurements (None unless backend == "vm")
    realized_cycles: int | None = None
    vm_steps: int | None = None
    realized_speedup: float | None = None
    # kernel family ("ll" | "synth"); additive within schema 1, so
    # pre-PR-4 artifacts (no field) read back with the default
    family: str = "ll"
    # incremental-analysis rebuild/patch deltas (GRiP backends only;
    # summed over segments for program kernels); additive in schema 1
    analysis_counters: dict[str, int] | None = None
    # decision-journal tallies + top blocked candidates, populated only
    # by ``bench --profile`` runs; additive in schema 1
    profile: dict | None = None
    # fingerprint of the SchedulePolicy the cell was scheduled under;
    # additive in schema 1 -- absent (pre-policy artifacts) reads back
    # as None, which the diff normalizes to the DEFAULT_POLICY
    # fingerprint (those sweeps *were* default-policy runs).  None on
    # POST cells, which never see the policy surface.
    policy_fingerprint: str | None = None

    @property
    def key(self) -> tuple[str, int, str]:
        return (self.kernel, self.fus, self.backend)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRecord":
        return cls(**data)


@dataclass
class BenchArtifact:
    """A full sweep: records plus reproduction metadata."""

    name: str
    records: list[BenchRecord] = field(default_factory=list)
    config: dict = field(default_factory=dict)
    host: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    created: float = 0.0
    schema: int = SCHEMA_VERSION

    # -- JSON round-trip -----------------------------------------------
    def to_json(self) -> str:
        payload = {
            "schema": self.schema,
            "kind": ARTIFACT_KIND,
            "name": self.name,
            "created": self.created,
            "config": self.config,
            "host": self.host,
            "wall_seconds": self.wall_seconds,
            "records": [r.to_dict() for r in self.records],
        }
        return json.dumps(payload, indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "BenchArtifact":
        data = json.loads(text)
        if data.get("kind") != ARTIFACT_KIND:
            raise ValueError(f"not a {ARTIFACT_KIND} artifact: "
                             f"kind={data.get('kind')!r}")
        if data.get("schema") != SCHEMA_VERSION:
            raise ValueError(f"unsupported bench schema "
                             f"{data.get('schema')!r} (want {SCHEMA_VERSION})")
        return cls(
            name=data["name"],
            records=[BenchRecord.from_dict(r) for r in data["records"]],
            config=data.get("config", {}),
            host=data.get("host", {}),
            wall_seconds=data.get("wall_seconds", 0.0),
            created=data.get("created", 0.0),
            schema=data["schema"],
        )

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def read(cls, path: str | Path) -> "BenchArtifact":
        return cls.from_json(Path(path).read_text())

    # -- Views ----------------------------------------------------------
    def speedup_table(self) -> SpeedupTable:
        """Table-1 layout over the scheduling backends in the sweep."""
        fus = sorted({r.fus for r in self.records})
        systems = [SYSTEM_LABELS[b] for b in ("grip", "post", "vm")
                   if any(r.backend == b for r in self.records)]
        t = SpeedupTable(fu_configs=tuple(fus), systems=tuple(systems))
        for r in self.records:
            t.add(r.kernel, r.fus, SYSTEM_LABELS[r.backend], r.speedup,
                  weight=r.ops_per_iteration)
        return t

    def stage_totals(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for r in self.records:
            for stage, secs in r.stages.items():
                totals[stage] = totals.get(stage, 0.0) + secs
        return totals


# ----------------------------------------------------------------------
# Regression diffing
# ----------------------------------------------------------------------
@dataclass
class RecordDelta:
    """Speedup change of one (kernel, fus, backend) cell."""

    kernel: str
    fus: int
    backend: str
    old: float | None
    new: float | None

    @property
    def rel_change(self) -> float | None:
        if not self.old or self.new is None:
            return None
        return (self.new - self.old) / self.old

    def describe(self) -> str:
        rel = self.rel_change
        pct = f"{rel * 100:+.1f}%" if rel is not None else "n/a"
        return (f"{self.kernel}@{self.fus} [{self.backend}]: "
                f"{self.old} -> {self.new} ({pct})")


@dataclass
class BenchDiff:
    """Outcome of comparing a new sweep against a previous artifact.

    Only cells present in both sweeps are compared; ``missing`` lists
    cells the old artifact had but the new one lacks (treated as a
    failure: a kernel silently dropping out of the sweep is a
    regression), ``added`` lists new coverage (fine).
    """

    rel_tol: float
    regressions: list[RecordDelta] = field(default_factory=list)
    improvements: list[RecordDelta] = field(default_factory=list)
    unchanged: int = 0
    missing: list[tuple[str, int, str]] = field(default_factory=list)
    added: list[tuple[str, int, str]] = field(default_factory=list)
    #: cells measured at different unrolls or under different schedule
    #: policies: not comparable, a failure
    incomparable: list[tuple[str, int, str]] = field(default_factory=list)
    #: why each incomparable cell was flagged, keyed like the list
    incomparable_reasons: dict[tuple[str, int, str], str] = field(
        default_factory=dict)

    @property
    def ok(self) -> bool:
        return (not self.regressions and not self.missing
                and not self.incomparable)

    def render(self) -> str:
        lines = [f"bench diff (rel_tol={self.rel_tol:.2%}): "
                 f"{self.unchanged} unchanged, "
                 f"{len(self.improvements)} improved, "
                 f"{len(self.regressions)} regressed, "
                 f"{len(self.missing)} missing, "
                 f"{len(self.incomparable)} incomparable, "
                 f"{len(self.added)} added"]
        for d in self.regressions:
            lines.append(f"  REGRESSION {d.describe()}")
        for key in self.missing:
            lines.append(f"  MISSING    {key[0]}@{key[1]} [{key[2]}]")
        for key in self.incomparable:
            why = self.incomparable_reasons.get(key, "different unroll")
            lines.append(f"  INCOMPARABLE {key[0]}@{key[1]} [{key[2]}]: "
                         f"{why}")
        for d in self.improvements:
            lines.append(f"  improved   {d.describe()}")
        return "\n".join(lines)


def diff_artifacts(old: BenchArtifact, new: BenchArtifact, *,
                   rel_tol: float = 0.05, subset: bool = False) -> BenchDiff:
    """Regression gate: flag speedup drops beyond ``rel_tol``.

    A cell regresses when its speedup falls by more than ``rel_tol``
    relative to the old value, or when a previously converged cell no
    longer converges.  Wall-clock stages are intentionally not gated.

    ``subset=True`` compares only the cells the new sweep ran, instead
    of treating absent old cells as missing coverage -- this is how a
    ``--smoke`` sweep gates against the committed full-table baseline.
    """
    from ..scheduling.policy import DEFAULT_POLICY

    default_fp = DEFAULT_POLICY.fingerprint()
    diff = BenchDiff(rel_tol=rel_tol)
    old_by_key = {r.key: r for r in old.records}
    new_by_key = {r.key: r for r in new.records}
    for key, r_old in old_by_key.items():
        r_new = new_by_key.get(key)
        if r_new is None:
            if not subset:
                diff.missing.append(key)
            continue
        if r_old.unroll != r_new.unroll:
            # Same cell measured at a different unroll (e.g. a sweep
            # with a non-default --unroll-scale diffed against the
            # committed baseline): speedups are not comparable, and
            # silently gating one against the other would produce
            # spurious verdicts either way.
            diff.incomparable.append(key)
            diff.incomparable_reasons[key] = "different unroll"
            continue
        # Same precedent for schedule policies: a tuned cell gated
        # against a default-policy baseline (or vice versa) measures a
        # different scheduler configuration, not a regression.  Absent
        # fingerprints (pre-policy artifacts, POST cells) normalize to
        # the default-policy fingerprint, so committed baselines keep
        # gating default sweeps.
        fp_old = r_old.policy_fingerprint or default_fp
        fp_new = r_new.policy_fingerprint or default_fp
        if fp_old != fp_new:
            diff.incomparable.append(key)
            diff.incomparable_reasons[key] = "different schedule policy"
            continue
        delta = RecordDelta(kernel=r_old.kernel, fus=r_old.fus,
                            backend=r_old.backend,
                            old=r_old.speedup, new=r_new.speedup)
        if r_old.speedup is None:
            diff.unchanged += 1     # was not converged; nothing to lose
        elif r_new.speedup is None:
            diff.regressions.append(delta)
        elif r_new.speedup < r_old.speedup * (1 - rel_tol):
            diff.regressions.append(delta)
        elif r_new.speedup > r_old.speedup * (1 + rel_tol):
            diff.improvements.append(delta)
        else:
            diff.unchanged += 1
    diff.added = sorted(set(new_by_key) - set(old_by_key))
    return diff
