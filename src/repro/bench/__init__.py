"""Benchmark/evaluation subsystem: ``repro bench`` and ``repro fuzz``.

Bench fans kernels x fu-configs x backends out across a worker pool,
emits machine-readable ``BENCH_*.json`` artifacts (schedule speedups,
realized VM cycles, per-stage wall-clock), and diffs sweeps against a
previous artifact as a regression gate.

Fuzz (:mod:`repro.bench.fuzz`) drives the same execution stack over
the seeded synthetic scenario space: schedule-validity, tree-walker
equivalence and bundle-VM differential checks per seed, with shrinking
and ``FUZZ_<seed>.json`` repro artifacts on failure.
"""

from .artifact import (
    ARTIFACT_KIND,
    SCHEMA_VERSION,
    BenchArtifact,
    BenchDiff,
    BenchRecord,
    RecordDelta,
    diff_artifacts,
)
# NOTE: repro.bench.fuzz is intentionally NOT imported here.  The
# runner keeps its heavy imports inside functions so pool workers and
# `repro bench --help` stay cheap; an eager fuzz re-export would drag
# the whole scheduling/workloads stack in at package-import time.
# Import the fuzz API from its own module: `from repro.bench.fuzz
# import run_fuzz, replay, ...`.
from .runner import (
    BACKENDS,
    BenchJob,
    make_jobs,
    run_bench,
    run_job,
    run_jobs,
    smoke_jobs,
)

__all__ = [
    "ARTIFACT_KIND", "BACKENDS", "BenchArtifact", "BenchDiff", "BenchJob",
    "BenchRecord", "RecordDelta", "SCHEMA_VERSION", "diff_artifacts",
    "make_jobs", "run_bench", "run_job", "run_jobs", "smoke_jobs",
]
