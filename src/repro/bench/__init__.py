"""Benchmark/evaluation subsystem: ``repro bench``.

Fans kernels x fu-configs x backends out across a worker pool, emits
machine-readable ``BENCH_*.json`` artifacts (schedule speedups,
realized VM cycles, per-stage wall-clock), and diffs sweeps against a
previous artifact as a regression gate.
"""

from .artifact import (
    ARTIFACT_KIND,
    SCHEMA_VERSION,
    BenchArtifact,
    BenchDiff,
    BenchRecord,
    RecordDelta,
    diff_artifacts,
)
from .runner import (
    BACKENDS,
    BenchJob,
    make_jobs,
    run_bench,
    run_job,
    run_jobs,
    smoke_jobs,
)

__all__ = [
    "ARTIFACT_KIND", "BACKENDS", "BenchArtifact", "BenchDiff", "BenchJob",
    "BenchRecord", "RecordDelta", "SCHEMA_VERSION", "diff_artifacts",
    "make_jobs", "run_bench", "run_job", "run_jobs", "smoke_jobs",
]
