"""``repro fuzz``: differential fuzzing over the synthetic kernel space.

The existing tree-walker-vs-VM checker is a correctness engine waiting
for inputs; this module feeds it.  Every fuzz seed deterministically
pins one :class:`FuzzCase` -- a scenario-space program
(:mod:`repro.workloads.synth`) plus a machine shape (FU count, optional
typed budgets), an unroll factor, and (the ``policy`` stratum, about a
quarter of seeds) a seeded random-but-valid
:class:`~repro.scheduling.policy.SchedulePolicy` the case is scheduled
under -- and runs the full check pipeline:

1. **frontend round-trip** -- the generated DSL source must lex, parse
   and lower;
2. **GRiP schedule validity** -- the scheduled graph passes the
   structural ``graph.check()`` and every reachable node satisfies the
   machine's total and typed slot budgets;
3. **batched semantic check**
   (:func:`~repro.backend.check.batched_pair_check`) -- the tree-walker
   (semantic ground truth) runs both graphs on the reference seeds and
   their finals must match (equivalence); then 16 independent initial
   states run through each graph's compiled bundle program in one
   batched-VM pass each, the reference lanes are pinned cell-by-cell
   against the walker (differential, including the
   one-bundle-per-cycle contract), and ALL lanes are compared seq-VM
   vs scheduled-VM in one vectorized sweep.  Per-lane *vacuity* (did
   every loop's back edge actually execute on this lane?) is recorded
   in the campaign summary and repro artifacts;
4. **journal invariants** (sampled) -- a verifying
   :class:`~repro.analysis.incremental.AnalysisManager` attached
   before scheduling cross-checks every incremental index query
   against a from-scratch computation.  Every campaign case also
   carries a tally-only
   :class:`~repro.obs.journal.DecisionJournal` (``keep_events=False``),
   so scheduler decision totals come for free without event storage.

On any failure the program is **shrunk**: statements are greedily
dropped (then the unroll reduced) while the failure reproduces, and a
minimized ``FUZZ_<seed>.json`` repro artifact is written.  The
artifact carries both the original and minimized source (regenerable
from the seed alone -- see the seed-reproducibility contract in
:mod:`repro.workloads.synth`) and replays with
``repro fuzz --replay FUZZ_<seed>.json``.

Exit codes (shared with ``repro bench``): 0 = all seeds clean,
1 = at least one mismatch (artifacts written), 2 = usage error.

``--tamper drop-store`` injects a known scheduler-shaped bug (dropping
the first store from the scheduled graph) so the lane itself can be
tested end to end: the tamper must be *caught*, *shrunk*, and
*replayed* (see ``tests/bench/test_fuzz.py``).
"""

from __future__ import annotations

import json
import multiprocessing
import sys
import time
import random
from dataclasses import dataclass, field
from pathlib import Path

from ..ir.operations import OpKind
from ..machine.model import FUClass, MachineConfig
from ..workloads.synth import Scenario, SynthProgram, generate, scenario_from_seed

FUZZ_SCHEMA = 1
FUZZ_KIND = "repro-fuzz"

#: message size cap in artifacts (failure diffs can be arbitrarily long)
_MSG_LIMIT = 4000

#: typed-budget shapes the fuzz matrix sweeps (``fus`` = total slots).
#: ``balanced`` is the historical shape; ``mem-starved`` pins one load/
#: store port (serializing memory traffic through the fill loops);
#: ``branch-rich`` gives branches as many slots as anything else
#:  (stressing CJ-motion under per-class budgets).
TYPED_SHAPES = ("balanced", "mem-starved", "branch-rich")

#: latency maps for the fuzz differential's scoreboard axis.
LATENCY_MAPS: dict[str, dict[OpKind, int]] = {
    "short": {OpKind.LOAD: 2, OpKind.MUL: 2},
    "long": {OpKind.LOAD: 3, OpKind.MUL: 4, OpKind.DIV: 6, OpKind.STORE: 2},
}


def typed_budgets(shape: str, fus: int) -> dict[FUClass, int]:
    """Per-class budgets of one typed-machine shape."""
    if shape == "balanced":
        return {
            FUClass.ALU: max(1, fus - 1),
            FUClass.MEM: max(1, fus // 2),
            FUClass.BRANCH: 1,
        }
    if shape == "mem-starved":
        return {FUClass.ALU: fus, FUClass.MEM: 1, FUClass.BRANCH: 1}
    if shape == "branch-rich":
        per = max(1, fus // 2)
        return {FUClass.ALU: per, FUClass.MEM: per, FUClass.BRANCH: per}
    raise ValueError(f"unknown typed shape {shape!r} (want {TYPED_SHAPES})")


@dataclass(frozen=True)
class FuzzCase:
    """One fuzz seed, fully derived: program shape plus run axes."""

    seed: int
    scenario: Scenario
    fus: int
    typed: bool
    unroll: int
    #: which :data:`TYPED_SHAPES` member applies when ``typed``
    typed_shape: str = "balanced"
    #: :data:`LATENCY_MAPS` key, or None for the single-cycle machine
    lat: str | None = None
    #: ``policy`` stratum: derivation seed of a random (but valid)
    #: :class:`~repro.scheduling.policy.SchedulePolicy` the case is
    #: scheduled under, or None for the default policy.  Kept as a seed
    #: (not the policy itself) so the case stays a pure function of the
    #: fuzz seed.
    policy_seed: int | None = None

    def policy(self):
        """The case's SchedulePolicy, or None for the default."""
        if self.policy_seed is None:
            return None
        from ..tune.search import random_policy

        return random_policy(
            random.Random(f"grip-fuzz-policy:{self.policy_seed}"),
            allow_gap_off=True)

    def machine(self) -> MachineConfig:
        latencies = LATENCY_MAPS[self.lat] if self.lat else None
        if not self.typed:
            return MachineConfig(fus=self.fus, latencies=latencies)
        return MachineConfig(
            fus=self.fus,
            typed=typed_budgets(self.typed_shape, self.fus),
            latencies=latencies,
        )


def case_from_seed(seed: int) -> FuzzCase:
    """Derive the whole case from the seed (pure; the repro contract)."""
    rng = random.Random(f"grip-fuzz-case:{seed}")
    fus = rng.choice((2, 4, 8))
    typed = rng.random() < 0.3
    unroll = rng.choice((4, 6, 8))
    typed_shape = rng.choice(TYPED_SHAPES) if typed else "balanced"
    lat = rng.choice((None, None, None, "short", "long"))
    # Seed-reproducibility contract: this draw is APPENDED after every
    # pre-existing one, so older seeds derive byte-identical cases up
    # to the new axis.
    policy_seed = seed if rng.random() < 0.25 else None
    return FuzzCase(
        seed=seed,
        scenario=scenario_from_seed(seed),
        fus=fus,
        typed=typed,
        unroll=unroll,
        typed_shape=typed_shape,
        lat=lat,
        policy_seed=policy_seed,
    )


@dataclass
class FuzzFailure:
    """One classified check failure."""

    stage: str  # frontend | schedule | resources | equivalence | differential | verify | crash
    message: str

    def to_dict(self) -> dict:
        return {"stage": self.stage, "message": self.message[:_MSG_LIMIT]}


class ResourceViolation(AssertionError):
    """A scheduled node exceeds the machine's slot budgets."""


# ----------------------------------------------------------------------
# Fault injection (testing the lane itself)
# ----------------------------------------------------------------------
def _tamper_drop_store(graph) -> None:
    """Remove the first store in RPO -- a semantics-changing bug."""
    from ..ir.operations import OpKind

    for nid in graph.rpo():
        for op in list(graph.nodes[nid].all_ops()):
            if op.kind is OpKind.STORE:
                graph.remove_op(nid, op.uid)
                return


#: name -> graph mutator, applied between scheduling and checking
TAMPERS = {"drop-store": _tamper_drop_store}


# ----------------------------------------------------------------------
# The check pipeline
# ----------------------------------------------------------------------
#: reference seeds: the lanes additionally pinned against the
#: tree-walking simulator.  One seed was enough for counted loops (the
#: trip count is static); a while loop's trip count is
#: *data*-dependent -- a single unlucky initial state can run it zero
#: iterations and make every semantic check vacuous -- so three
#: walker-pinned states, with the batched VM extending the semantic
#: sweep to :data:`DEFAULT_LANES` states per case.
CHECK_SEEDS = (0, 1, 2)

#: states per case the batched semantic check runs (PR 5 ran 3 in
#: per-seed lockstep; the batched VM makes 16 cheaper than 3 were).
DEFAULT_LANES = 16


@dataclass
class CaseStats:
    """Per-case verification statistics (lane model + journal tallies).

    ``checked_lanes`` counts non-vacuous lanes: initial states whose
    run took every loop's back edge at least once, so the semantic
    verdict actually exercised the loop bodies.  A green case with
    ``checked_lanes == 0`` proved nothing about its loops -- the
    campaign summary surfaces those instead of leaving them silently
    green.
    """

    n_lanes: int
    checked_lanes: int
    #: scheduler-decision tallies of the case's tally-only journal
    #: (``tried``/``accepted``/``by_reason``), when one was attached
    tallies: dict | None = None

    def to_dict(self) -> dict:
        return {"n_lanes": self.n_lanes, "checked_lanes": self.checked_lanes}


def check_source(
    source: str,
    unroll: int,
    machine: MachineConfig,
    *,
    name: str = "fuzz",
    verify: bool = False,
    tamper: str | None = None,
    seeds: tuple[int, ...] = CHECK_SEEDS,
    lanes: int = DEFAULT_LANES,
    tracer=None,
    cache=None,
    policy=None,
) -> CaseStats:
    """Run the full fuzz check pipeline; raises on any divergence.

    Both source shapes (single counted loop, while/multi-loop program)
    schedule through :func:`repro.api.schedule` (``measure=False``:
    the semantic verdict below subsumes the measurement pass).  The
    verdict then comes from ONE
    :func:`~repro.backend.check.batched_pair_check`: walker-vs-walker
    equivalence on ``seeds``, batched-VM differential on those
    reference lanes, and a vectorized seq-VM-vs-scheduled-VM sweep
    over all ``lanes`` initial states.  Returns the case's lane
    statistics (state count, per-lane non-vacuity).

    ``tracer`` (e.g. a :class:`~repro.obs.journal.DecisionJournal`)
    observes the scheduling decisions and pass-pipeline transforms of
    the run -- ``repro fuzz --replay`` uses it to print the reason-code
    tally alongside the replay verdict.  ``cache`` (a
    :class:`~repro.cache.ScheduleCache`) lets fuzz cases that collide
    on canonical form (alpha-equivalent generated programs) reuse one
    schedule; every warm result is still fully re-checked below.

    ``policy`` (a :class:`~repro.scheduling.policy.SchedulePolicy`, or
    None for the default) steers the schedule under test -- the
    ``policy`` stratum runs seeds under seeded random policies, and
    every check below applies unchanged: a valid policy may produce a
    different schedule, never an incorrect one.
    """
    from .. import api
    from ..backend.check import batched_pair_check
    from ..ir.loops import CountedLoop
    from ..obs.tracer import NULL_TRACER
    from ..pipelining import find_pattern

    tracer = NULL_TRACER if tracer is None else tracer
    loop = api.compile(source, unroll, name=name)
    res = api.schedule(
        loop, machine,
        options=api.ScheduleOptions(unroll=unroll, measure=False,
                                    verify_analysis=verify, policy=policy),
        cache=cache, tracer=tracer)
    if isinstance(loop, CountedLoop):
        unwound = res.unwound
        graph = unwound.graph
    else:
        graph = res.graph
    if tamper is not None:
        TAMPERS[tamper](graph)
    graph.check()
    for nid in graph.reachable():
        if not machine.fits(graph.nodes[nid]):
            raise ResourceViolation(
                f"node {nid} exceeds {machine} budgets "
                f"({machine.slots_used(graph.nodes[nid])} slots)"
            )
    if isinstance(loop, CountedLoop):
        # Pattern detection must at least not crash on any generated
        # shape (schedule_program already ran it per counted segment).
        find_pattern(unwound, graph)
    rep = batched_pair_check(loop.graph, graph, machine,
                             ref_seeds=seeds, lanes=lanes)
    return CaseStats(n_lanes=rep.n_lanes, checked_lanes=rep.checked_lanes)


def run_source(
    source: str,
    unroll: int,
    machine: MachineConfig,
    *,
    name: str = "fuzz",
    verify: bool = False,
    tamper: str | None = None,
    lanes: int = DEFAULT_LANES,
    tracer=None,
    stats_sink: list[CaseStats] | None = None,
    cache=None,
    policy=None,
) -> FuzzFailure | None:
    """:func:`check_source` with failures classified, not raised.

    On a clean run the case's :class:`CaseStats` is appended to
    ``stats_sink`` (when given); failing runs contribute no stats --
    their lane data is incomplete by construction.
    """
    from ..backend.check import DifferentialError
    from ..frontend import LexError, LowerError, ParseError
    from ..simulator.check import EquivalenceError

    try:
        stats = check_source(
            source, unroll, machine, name=name, verify=verify, tamper=tamper,
            lanes=lanes, tracer=tracer, cache=cache, policy=policy,
        )
    except (LexError, ParseError, LowerError) as exc:
        return FuzzFailure("frontend", f"{type(exc).__name__}: {exc}")
    except ResourceViolation as exc:
        return FuzzFailure("resources", str(exc))
    except DifferentialError as exc:
        return FuzzFailure("differential", str(exc))
    except EquivalenceError as exc:
        return FuzzFailure("equivalence", str(exc))
    except AssertionError as exc:
        # Under verify mode the AnalysisManager raises plain
        # AssertionError at the exact query that observed an
        # incremental-maintenance bug; without it, a bare assertion
        # (e.g. graph.check()) is a scheduler-side structural break.
        stage = "verify" if verify else "schedule"
        return FuzzFailure(stage, f"{type(exc).__name__}: {exc}")
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return FuzzFailure("crash", f"{type(exc).__name__}: {exc}")
    if stats_sink is not None:
        stats_sink.append(stats)
    return None


def run_case(
    case: FuzzCase, *, verify: bool = False, tamper: str | None = None,
    lanes: int = DEFAULT_LANES, tracer=None,
    stats_sink: list[CaseStats] | None = None, cache=None,
) -> FuzzFailure | None:
    program = generate(case.scenario)
    return run_source(
        program.source(),
        case.unroll,
        case.machine(),
        name=f"fuzz{case.seed}",
        verify=verify,
        tamper=tamper,
        lanes=lanes,
        tracer=tracer,
        stats_sink=stats_sink,
        cache=cache,
        policy=case.policy(),
    )


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
@dataclass
class ShrinkResult:
    program: SynthProgram
    unroll: int
    attempts: int
    dropped: int


def shrink_case(
    case: FuzzCase,
    program: SynthProgram,
    *,
    verify: bool = False,
    tamper: str | None = None,
    stage: str | None = None,
    lanes: int = DEFAULT_LANES,
    max_attempts: int = 120,
) -> ShrinkResult:
    """Greedily minimize a failing program while the failure reproduces.

    Statement-level ddmin-lite over the flat statement list: repeatedly
    try dropping each statement (later statements first -- they are the
    most likely dead weight), keeping any removal that still fails;
    then try smaller unrolls.  A loop whose payload empties is dropped
    wholesale (a while loop's counter-advance tail never shrinks away
    on its own -- the candidate would stop terminating).  Declarations
    stay fixed (unused decls are valid DSL), so every candidate is
    parseable by construction.  ``verify`` must match the failing run:
    verify-stage failures only reproduce under a verifying
    AnalysisManager.  When ``stage`` is given, only candidates failing
    at the *same* stage count as reproductions -- otherwise the
    shrinker could latch onto an unrelated bug and the artifact's
    minimized source would track a different failure than it records.
    """
    machine = case.machine()
    # A policy-stratum failure may only reproduce under the case's
    # policy; every shrink candidate keeps it.
    policy = case.policy()
    attempts = 0

    def fails(candidate: SynthProgram, unroll: int) -> bool:
        nonlocal attempts
        attempts += 1
        failure = run_source(
            candidate.source(),
            unroll,
            machine,
            name=f"shrink{case.seed}",
            verify=verify,
            tamper=tamper,
            lanes=lanes,
            policy=policy,
        )
        if failure is None:
            return False
        return stage is None or failure.stage == stage

    current = program
    unroll = case.unroll
    changed = True
    while changed and current.n_statements > 1 and attempts < max_attempts:
        changed = False
        for i in reversed(range(current.n_statements)):
            if current.n_statements == 1 or attempts >= max_attempts:
                break
            cand = current.drop_statement(i)
            if fails(cand, unroll):
                current = cand
                changed = True
    for smaller in (2, 3):
        if smaller < unroll and attempts < max_attempts and fails(current, smaller):
            unroll = smaller
            break
    return ShrinkResult(
        program=current,
        unroll=unroll,
        attempts=attempts,
        dropped=program.n_statements - current.n_statements,
    )


# ----------------------------------------------------------------------
# Repro artifacts
# ----------------------------------------------------------------------
def write_artifact(
    out_dir: str | Path,
    case: FuzzCase,
    program: SynthProgram,
    failure: FuzzFailure,
    shrunk: ShrinkResult | None,
    *,
    verify: bool = False,
    tamper: str | None = None,
    lanes: int = DEFAULT_LANES,
    stats: CaseStats | None = None,
) -> Path:
    payload = {
        "schema": FUZZ_SCHEMA,
        "kind": FUZZ_KIND,
        "seed": case.seed,
        "case": {
            "fus": case.fus,
            "typed": case.typed,
            "typed_shape": case.typed_shape,
            "lat": case.lat,
            "unroll": case.unroll,
            "scenario": case.scenario.to_dict(),
            # the rendered policy dict travels alongside its seed so
            # replay does NOT depend on random_policy's draw sequence
            # staying frozen across versions
            "policy_seed": case.policy_seed,
            "policy": (case.policy().to_dict()
                       if case.policy_seed is not None else None),
        },
        "failure": failure.to_dict(),
        "source": program.source(),
        "minimized": None,
        "verify": verify,
        "tamper": tamper,
        # lane model of the batched semantic check: replay reruns the
        # same state count; ``stats`` (per-lane non-vacuity) is present
        # only when the case got far enough to measure it.
        "lanes": lanes,
        "stats": stats.to_dict() if stats is not None else None,
        "created": time.time(),
    }
    if shrunk is not None:
        payload["minimized"] = {
            "source": shrunk.program.source(),
            "unroll": shrunk.unroll,
            "statements_dropped": shrunk.dropped,
            "shrink_attempts": shrunk.attempts,
        }
    path = Path(out_dir) / f"FUZZ_{case.seed}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def replay(path: str | Path, *, tracer=None) -> FuzzFailure | None:
    """Re-run the checks of a repro artifact (minimized when present).

    Returns the reproduced failure, or ``None`` once the underlying
    bug is fixed.  Raises ``ValueError`` on a non-repro JSON file.
    ``tracer`` observes the replay's scheduling run (the CLI attaches a
    :class:`~repro.obs.journal.DecisionJournal` and prints its
    reason-code tally).
    """
    data = json.loads(Path(path).read_text())
    if data.get("kind") != FUZZ_KIND:
        raise ValueError(f"not a {FUZZ_KIND} artifact: kind={data.get('kind')!r}")
    if data.get("schema") != FUZZ_SCHEMA:
        raise ValueError(f"unsupported fuzz schema {data.get('schema')!r}")
    case = data["case"]
    machine = FuzzCase(
        seed=data["seed"],
        scenario=Scenario.from_dict(case["scenario"]),
        fus=case["fus"],
        typed=case["typed"],
        unroll=case["unroll"],
        # absent in schema-1 artifacts predating these axes
        typed_shape=case.get("typed_shape", "balanced"),
        lat=case.get("lat"),
    ).machine()
    minimized = data.get("minimized")
    if minimized:
        source, unroll = minimized["source"], minimized["unroll"]
    else:
        source, unroll = data["source"], case["unroll"]
    # Policy-stratum artifacts replay the *recorded* policy dict (not a
    # re-derivation from policy_seed): the failure pins the policy that
    # exposed it even if random_policy's draws change later.
    policy = None
    if case.get("policy") is not None:
        from ..scheduling.policy import SchedulePolicy

        policy = SchedulePolicy.from_dict(case["policy"])
    return run_source(
        source,
        unroll,
        machine,
        name=f"replay{data['seed']}",
        verify=data.get("verify", False),
        tamper=data.get("tamper"),
        # pre-batching schema-1 artifacts recorded no lane count; their
        # failures reproduce on the reference lanes regardless
        lanes=data.get("lanes", DEFAULT_LANES),
        tracer=tracer,
        policy=policy,
    )


# ----------------------------------------------------------------------
# The campaign driver
# ----------------------------------------------------------------------
#: stratification buckets: the five body patterns, the two program
#: shapes, the three pass-pipeline shapes the generator can emit, and
#: the policy axis (cases scheduled under a seeded random policy).
STRATA = ("stream", "reduction", "recurrence", "indirect", "mixed",
          "while", "multi_loop", "nested", "fusable", "hoist", "policy")


def stratum_of(scenario: Scenario) -> str:
    """Which campaign stratum a scenario's generated program lands in.

    Pass-pipeline shape wins over program shape wins over body pattern,
    with nested first: a program that actually rolled an inner
    ``while`` counts as ``nested`` (the rarest shape); then adjacent
    forced-counted loops as ``fusable``; then a rolled hoistable
    invariant as ``hoist``; then several top-level loops as
    ``multi_loop``; a single non-counted loop as ``while``; only plain
    single-counted-loop seeds stratify by pattern.  Classified on the
    *generated* program, not the densities -- ``nest_density=0.4``
    seeds can still roll a flat program.
    """
    program = generate(scenario)
    statements = [s for lp in program.loops for s in lp.statements]
    if any(s.startswith("while (") for s in statements):
        return "nested"
    if (scenario.fuse_density > 0 and len(program.loops) > 1
            and all(lp.kind == "for" for lp in program.loops)):
        return "fusable"
    if any(p.startswith("hv") for p in program.params):
        return "hoist"
    if len(program.loops) > 1:
        return "multi_loop"
    if program.loops[0].kind == "while":
        return "while"
    return scenario.pattern


def case_stratum(seed: int) -> str:
    """The stratum of one fuzz seed's fully derived case.

    The ``policy`` axis wins over every program-shape stratum: a seed
    scheduled under a random policy exercises the policy surface no
    matter what its program looks like, and the axis is orthogonal to
    the generator (so no scenario-side stratum loses coverage -- its
    seeds just also appear here occasionally).
    """
    case = case_from_seed(seed)
    if case.policy_seed is not None:
        return "policy"
    return stratum_of(case.scenario)


def stratified_seeds(
    budget: int, seed0: int = 0, *, scan_factor: int = 40
) -> list[int]:
    """``budget`` seeds from ``seed0`` upward, balanced across strata.

    A flat consecutive range leaves rare strata (e.g. depth-2 nested
    multi-loop programs) underrepresented in small campaigns; this scans
    ahead (up to ``budget * scan_factor`` seeds) and picks round-robin
    from each stratum's queue, so every scenario family gets roughly
    ``budget / len(STRATA)`` seeds.  Deterministic in (budget, seed0).
    """
    # Early exit: once every bucket holds ceil(budget / len(STRATA))
    # seeds the round-robin below is fully determined -- scanning on
    # just burns generate() calls.  Buckets still fill up to ``budget``
    # so a rare stratum's shortfall is covered by the others.
    enough = -(-budget // len(STRATA))
    buckets: dict[str, list[int]] = {s: [] for s in STRATA}
    for seed in range(seed0, seed0 + budget * scan_factor):
        bucket = buckets[case_stratum(seed)]
        if len(bucket) < budget:
            bucket.append(seed)
            if all(len(b) >= enough for b in buckets.values()):
                break
    out: list[int] = []
    depth = 0
    max_depth = max(len(b) for b in buckets.values()) if buckets else 0
    while len(out) < budget and depth < max_depth:
        for s in STRATA:
            if len(out) >= budget:
                break
            if depth < len(buckets[s]):
                out.append(buckets[s][depth])
        depth += 1
    # Degenerate scan (tiny budgets): pad with consecutive fresh seeds.
    nxt = seed0 + budget * scan_factor
    while len(out) < budget:
        out.append(nxt)
        nxt += 1
    return sorted(out)


@dataclass
class FuzzReport:
    budget: int
    seed0: int
    failures: list[tuple[int, FuzzFailure, Path | None]] = field(default_factory=list)
    verified_seeds: list[int] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: the exact seeds run (consecutive unless stratified)
    seeds: list[int] = field(default_factory=list)
    stratified: bool = False
    #: states per case the batched semantic check ran
    lanes: int = DEFAULT_LANES
    #: total states checked across clean cases (n_cases * lanes)
    states_checked: int = 0
    #: of those, states whose lanes were non-vacuous
    checked_lanes: int = 0
    #: clean seeds where NO lane exercised a loop body (silent-green
    #: candidates the vacuity accounting exists to surface)
    vacuous_seeds: list[int] = field(default_factory=list)
    #: scheduler-decision totals from the per-case tally journals
    hops_tried: int = 0
    hops_accepted: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        if self.seeds:
            span = f"[{min(self.seeds)}, {max(self.seeds)}]"
        else:
            span = f"[{self.seed0}, {self.seed0 + self.budget - 1}]"
        how = "stratified seeds" if self.stratified else "seeds"
        lines = [
            f"fuzz: {self.budget} {how} {span}, "
            f"{len(self.verified_seeds)} with verify-mode analysis, "
            f"{len(self.failures)} failure(s) "
            f"({self.wall_seconds:.1f}s wall)",
            f"  lanes: {self.lanes} states/case, "
            f"{self.states_checked} states checked, "
            f"{self.checked_lanes} non-vacuous; "
            f"all-vacuous seeds: "
            + (", ".join(map(str, self.vacuous_seeds))
               if self.vacuous_seeds else "none"),
            f"  journal: {self.hops_tried} scheduler hops tried, "
            f"{self.hops_accepted} accepted",
        ]
        for seed, failure, path in self.failures:
            where = f" -> {path}" if path else ""
            lines.append(
                f"  FAIL seed {seed} [{failure.stage}] "
                f"{failure.message.splitlines()[0][:120]}{where}"
            )
        return "\n".join(lines)


def _worker(
    task: tuple[int, bool, str | None, int, str | None]
) -> tuple[int, FuzzFailure | None, CaseStats | None]:
    """One seed (module-level: must be pool-picklable).

    Every case carries a tally-only
    :class:`~repro.obs.journal.DecisionJournal` -- campaign runs get
    scheduler-decision totals at tally cost, with no event retention
    (``--replay`` is where full journals are attached).

    Warm cache hits contribute no scheduler hops to the journal
    (there is no decision stream to replay), so a cached campaign
    reports fewer ``hops_tried`` -- accurately.
    """
    from ..obs import DecisionJournal
    from .runner import _cache_for

    seed, verify, tamper, lanes, cache_dir = task
    journal = DecisionJournal(keep_events=False)
    sink: list[CaseStats] = []
    failure = run_case(case_from_seed(seed), verify=verify, tamper=tamper,
                       lanes=lanes, tracer=journal, stats_sink=sink,
                       cache=_cache_for(cache_dir))
    stats = sink[0] if sink else None
    if stats is not None:
        stats.tallies = {"tried": journal.tried,
                         "accepted": journal.accepted}
    return seed, failure, stats


def run_fuzz(
    budget: int,
    seed0: int = 0,
    *,
    jobs: int = 1,
    verify_every: int = 10,
    out_dir: str | Path = ".",
    tamper: str | None = None,
    max_shrinks: int = 5,
    stratify: bool = False,
    lanes: int = DEFAULT_LANES,
    cache_dir: str | None = None,
    serve: str | None = None,
    log=None,
) -> FuzzReport:
    """Fuzz ``budget`` seeds starting at ``seed0``.

    Seeds are consecutive by default; ``stratify=True`` balances them
    across scenario strata (:func:`stratified_seeds`: body patterns
    plus while / multi-loop program shapes) -- the nightly campaign's
    mode.  Seeds fan out over a ``multiprocessing`` pool (the cases are
    independent and deterministic, exactly like bench jobs) and stream
    back through ``imap_unordered``, so the parent shrinks failures
    and writes artifacts *while* the pool keeps checking -- the
    generate->schedule->check flow is pipelined instead of per-seed
    lockstep.  Shrinking is capped at ``max_shrinks`` artifacts per
    campaign so a systemic breakage cannot turn the nightly run into a
    shrink marathon.  Every ``verify_every``-th seed additionally runs
    under a verifying :class:`AnalysisManager`.

    ``cache_dir`` points the checks at a shared schedule cache
    (alpha-equivalent generated programs reuse one schedule; every
    warm result is still fully re-checked).  ``serve`` routes the
    cases through a running ``repro serve`` front instead of a local
    pool (``jobs`` is then the server's concern); failures stream
    back and are shrunk locally, exactly like pool failures.
    """
    log = log or (lambda msg: print(msg, file=sys.stderr))
    t0 = time.perf_counter()
    seeds = (
        stratified_seeds(budget, seed0)
        if stratify
        else [seed0 + i for i in range(budget)]
    )
    tasks = [
        (seed, verify_every > 0 and i % verify_every == 0, tamper, lanes,
         cache_dir)
        for i, seed in enumerate(seeds)
    ]
    verify_by_seed = {seed: verify for seed, verify, *_ in tasks}
    report = FuzzReport(
        budget=budget,
        seed0=seed0,
        verified_seeds=[seed for seed, verify, *_ in tasks if verify],
        seeds=seeds,
        stratified=stratify,
        lanes=lanes,
    )
    shrunk_count = 0

    def _consume(seed: int, failure: FuzzFailure | None,
                 stats: CaseStats | None) -> None:
        nonlocal shrunk_count
        if stats is not None:
            report.states_checked += stats.n_lanes
            report.checked_lanes += stats.checked_lanes
            if failure is None and stats.checked_lanes == 0:
                report.vacuous_seeds.append(seed)
            if stats.tallies:
                report.hops_tried += stats.tallies.get("tried", 0)
                report.hops_accepted += stats.tallies.get("accepted", 0)
        if failure is None:
            return
        case = case_from_seed(seed)
        program = generate(case.scenario)
        # Verify-stage failures only reproduce under a verifying
        # manager, so the shrinker and the artifact's replay must keep
        # the seed's verify axis.
        verify = verify_by_seed[seed]
        shrunk = None
        if shrunk_count < max_shrinks:
            log(f"fuzz: seed {seed} failed [{failure.stage}]; shrinking ...")
            shrunk = shrink_case(
                case, program, verify=verify, tamper=tamper,
                stage=failure.stage, lanes=lanes,
            )
            shrunk_count += 1
        path = write_artifact(
            out_dir, case, program, failure, shrunk, verify=verify,
            tamper=tamper, lanes=lanes, stats=stats,
        )
        report.failures.append((seed, failure, path))

    if serve is not None:
        from ..serve.client import submit_fuzz_tasks

        for seed, failure, stats in submit_fuzz_tasks(serve, tasks):
            _consume(seed, failure, stats)
    elif jobs > 1 and len(tasks) > 1:
        with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
            for seed, failure, stats in pool.imap_unordered(
                    _worker, tasks, chunksize=1):
                _consume(seed, failure, stats)
    else:
        for t in tasks:
            _consume(*_worker(t))

    # imap_unordered streams in completion order; reports stay
    # deterministic in content by re-sorting on seed.
    report.failures.sort(key=lambda f: f[0])
    report.vacuous_seeds.sort()
    report.wall_seconds = time.perf_counter() - t0
    return report
