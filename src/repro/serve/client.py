"""Synchronous client for a running ``repro serve`` front.

``repro bench --serve HOST:PORT`` and ``repro fuzz --serve HOST:PORT``
are thin wrappers over this module: they build the same job dicts the
local pool would run, submit them as one batch, and rebuild their
native result objects (:class:`~repro.bench.artifact.BenchRecord`,
``(seed, FuzzFailure, CaseStats)`` triples) from the streamed
answers.
"""

from __future__ import annotations

import json
import socket
from collections.abc import Iterator

from .jobs import SERVE_KIND, SERVE_SCHEMA


class ServeProtocolError(RuntimeError):
    """The server sent something outside the repro-serve schema."""


def parse_addr(addr: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (host defaults to loopback)."""
    host, sep, port = addr.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"serve address must be HOST:PORT, got {addr!r}")
    return (host or "127.0.0.1", int(port))


def stream_batch(addr: str, jobs: list[dict]) -> Iterator[dict]:
    """Submit one batch; yield each response line (summary last).

    Yields the per-job ``{"type": "result", ...}`` dicts in the
    server's completion order, then the single ``batch-summary`` dict,
    and returns.  Raises :class:`ServeProtocolError` on an ``error``
    line or a schema mismatch.
    """
    host, port = parse_addr(addr)
    with socket.create_connection((host, port)) as sock:
        sock.sendall(json.dumps({"batch": jobs}).encode() + b"\n")
        with sock.makefile("r", encoding="utf-8") as stream:
            for raw in stream:
                raw = raw.strip()
                if not raw:
                    continue
                line = json.loads(raw)
                if (line.get("kind") != SERVE_KIND
                        or line.get("schema") != SERVE_SCHEMA):
                    raise ServeProtocolError(
                        f"not a {SERVE_KIND}/schema-{SERVE_SCHEMA} "
                        f"line: {raw[:200]}")
                if line.get("type") == "error":
                    raise ServeProtocolError(
                        f"server rejected batch: {line.get('message')}")
                yield line
                if line.get("type") == "batch-summary":
                    return
    raise ServeProtocolError(
        "connection closed before the batch summary arrived")


def submit_batch(addr: str, jobs: list[dict]) -> tuple[list[dict], dict]:
    """Submit one batch; return ``(result lines, batch summary)``."""
    results: list[dict] = []
    summary: dict = {}
    for line in stream_batch(addr, jobs):
        if line.get("type") == "batch-summary":
            summary = line
        else:
            results.append(line)
    return results, summary


# ----------------------------------------------------------------------
# Native-shape helpers for the bench / fuzz CLI fronts
# ----------------------------------------------------------------------
def submit_bench_jobs(addr: str, bench_jobs) -> tuple[list, dict]:
    """Run :class:`BenchJob` cells through the serve front.

    Returns records in the *submitted* job order (matching the local
    ``pool.map`` contract that parallel and sequential sweeps line up
    record-for-record), plus the batch summary with its cache-hit
    counts.
    """
    from dataclasses import asdict

    from ..bench.artifact import BenchRecord

    payload = [
        {"id": i, "kind": "bench", "job": asdict(job)}
        for i, job in enumerate(bench_jobs)
    ]
    results, summary = submit_batch(addr, payload)
    by_id: dict[int, dict] = {}
    for line in results:
        if not line.get("ok"):
            err = line.get("error") or {}
            raise ServeProtocolError(
                f"bench job {line.get('id')} failed on the server "
                f"[{err.get('stage')}]: {err.get('message')}")
        by_id[line["id"]] = line["result"]["record"]
    missing = [i for i in range(len(payload)) if i not in by_id]
    if missing:
        raise ServeProtocolError(f"server answered no result for "
                                 f"bench jobs {missing}")
    records = [BenchRecord.from_dict(by_id[i]) for i in range(len(payload))]
    return records, summary


def submit_fuzz_tasks(addr: str, tasks) -> Iterator[tuple]:
    """Run fuzz worker tasks through the serve front.

    ``tasks`` are the local pool's 5-tuples ``(seed, verify, tamper,
    lanes, cache_dir)``; yields ``(seed, FuzzFailure | None,
    CaseStats | None)`` in the server's completion order -- the same
    streaming contract ``imap_unordered`` gives the campaign driver.
    A job the server itself failed on (not a reproduced finding --
    those are results) comes back as a ``crash``-stage failure.
    """
    from ..bench.fuzz import CaseStats, FuzzFailure

    payload = [
        {"id": seed, "kind": "fuzz", "seed": seed, "verify": verify,
         "tamper": tamper, "lanes": lanes, "cache_dir": cache_dir}
        for seed, verify, tamper, lanes, cache_dir in tasks
    ]
    for line in stream_batch(addr, payload):
        if line.get("type") == "batch-summary":
            return
        if not line.get("ok"):
            err = line.get("error") or {}
            yield (line.get("id"),
                   FuzzFailure("crash",
                               f"serve worker [{err.get('stage')}]: "
                               f"{err.get('message')}"),
                   None)
            continue
        result = line["result"]
        fail = result.get("failure")
        failure = (None if fail is None
                   else FuzzFailure(fail["stage"], fail["message"]))
        st = result.get("stats")
        stats = (None if st is None
                 else CaseStats(n_lanes=st["n_lanes"],
                                checked_lanes=st["checked_lanes"],
                                tallies=st.get("tallies")))
        yield result["seed"], failure, stats
