"""One serve job, executed inside a worker process.

Job kinds (the ``"kind"`` field of each batch entry):

``schedule``
    ``{"kind": "schedule", "source": <DSL> | "kernel": <name>,
    "fus": 4, "options": {...}}`` -- compile/load, schedule through
    :func:`repro.api.schedule`, return the stable summary payload of
    :func:`schedule_payload`.  ``options`` accepts the JSON-able
    subset of :class:`repro.api.ScheduleOptions` fields.

``bench``
    ``{"kind": "bench", "job": {BenchJob fields}}`` -- run one bench
    sweep cell, return its record dict.

``fuzz``
    ``{"kind": "fuzz", "seed": N, "verify": bool, "tamper": ...,
    "lanes": N}`` -- run one fuzz seed; a reproduced failure is part
    of the *result* (the job itself succeeded).

Every job answer reports whether the schedule cache answered
(``"cache": "hit" | "miss" | null``) by diffing the worker's cache
hit counter around the job.
"""

from __future__ import annotations

import traceback

SERVE_KIND = "repro-serve"
SERVE_SCHEMA = 1

#: set by the pool initializer: the server-wide cache directory
_CACHE_DIR: str | None = None


def init_worker(cache_dir: str | None) -> None:
    global _CACHE_DIR
    _CACHE_DIR = cache_dir


def schedule_payload(res) -> dict:
    """Stable JSON summary of either schedule-result flavor.

    Deliberately excludes wall-clock fields, so a served result is
    comparable bit-for-bit against a direct ``repro.api.schedule``
    call (the round-trip tests do exactly that).
    """
    unwound = getattr(res, "unwound", None)
    if unwound is not None:           # counted PipelineResult
        ii = res.initiation_interval
        return {
            "kind": "counted",
            "name": res.loop.name,
            "rows": len(unwound.graph.nodes),
            "iterations": unwound.iterations,
            "ii": ii,
            "speedup": res.speedup,
            "converged": res.converged,
            "periodic": res.periodic,
            "moves": res.schedule.stats.moves,
            "resource_blocks": res.schedule.stats.resource_blocks,
            "measured_seq_cycles": res.measured_seq_cycles,
            "measured_par_cycles": res.measured_par_cycles,
            "measured_speedup": res.measured_speedup,
        }
    segments = []
    for seg in res.segments:          # ProgramPipelineResult
        segments.append({
            "kind": seg.kind,
            "rows": len(seg.graph.nodes),
            "ii": seg.initiation_interval,
            "converged": seg.converged,
        })
    return {
        "kind": "program",
        "name": res.program.name,
        "rows": len(res.graph.nodes),
        "segments": segments,
        "speedup": res.speedup,
        "converged": res.converged,
        "periodic": res.periodic,
        "measured_seq_cycles": res.measured_seq_cycles,
        "measured_par_cycles": res.measured_par_cycles,
        "measured_speedup": res.measured_speedup,
    }


_OPTION_FIELDS = ("unroll", "gap_prevention", "allow_speculation",
                  "optimize", "measure", "verify", "verify_analysis",
                  "seeds", "policy")


def _options_from(spec: dict | None):
    from .. import api

    if not spec:
        return api.ScheduleOptions()
    unknown = set(spec) - set(_OPTION_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown schedule options {sorted(unknown)}; JSON jobs "
            f"accept {list(_OPTION_FIELDS)}")
    kwargs = dict(spec)
    if "seeds" in kwargs:
        kwargs["seeds"] = tuple(kwargs["seeds"])
    if kwargs.get("policy") is not None:
        # Policies travel JSON batches as plain dicts; a bad shape is
        # the client's error (ValueError ships back in the answer).
        from ..scheduling.policy import SchedulePolicy

        kwargs["policy"] = SchedulePolicy.from_dict(kwargs["policy"])
    return api.ScheduleOptions(**kwargs)


def _run_schedule(job: dict, cache) -> dict:
    from dataclasses import replace

    from .. import api
    from ..machine import MachineConfig

    machine = MachineConfig(fus=job.get("fus", 4))
    opts = _options_from(job.get("options"))
    if job.get("unroll") is not None:
        opts = replace(opts, unroll=job["unroll"])
    fus = machine.fus if machine.fus is not None else 8
    unroll = opts.unroll if opts.unroll is not None else max(16, 3 * fus)
    opts = replace(opts, unroll=unroll)
    if "source" in job:
        program = api.compile(job["source"], unroll,
                              name=job.get("name", "serve"))
    elif "kernel" in job:
        program = api.load_kernel(job["kernel"], unroll)
    else:
        raise ValueError("schedule job needs 'source' or 'kernel'")
    res = api.schedule(program, machine, options=opts, cache=cache)
    return schedule_payload(res)


def _run_bench(job: dict, cache) -> dict:
    from ..bench.runner import BenchJob, run_job

    spec = dict(job["job"])
    if _CACHE_DIR is not None and spec.get("cache") is None:
        spec["cache"] = _CACHE_DIR
    record = run_job(BenchJob(**spec))
    return {"record": record.to_dict()}


def _run_fuzz(job: dict, cache) -> dict:
    from ..bench.fuzz import _worker

    seed = job["seed"]
    task = (seed, bool(job.get("verify", False)), job.get("tamper"),
            int(job.get("lanes", 16)),
            job.get("cache_dir") or _CACHE_DIR)
    _, failure, stats = _worker(task)
    return {
        "seed": seed,
        "failure": (None if failure is None
                    else {"stage": failure.stage,
                          "message": failure.message}),
        "stats": (None if stats is None
                  else {"n_lanes": stats.n_lanes,
                        "checked_lanes": stats.checked_lanes,
                        "tallies": stats.tallies}),
    }


_RUNNERS = {"schedule": _run_schedule, "bench": _run_bench,
            "fuzz": _run_fuzz}


def run_serve_job(job: dict) -> dict:
    """Execute one batch entry; never raises (errors become payload).

    Module-level and argument-picklable: the server calls this through
    a ``ProcessPoolExecutor``.
    """
    from ..bench.runner import _cache_for

    answer = {
        "kind": SERVE_KIND,
        "schema": SERVE_SCHEMA,
        "type": "result",
        "id": job.get("id"),
    }
    cache = _cache_for(_CACHE_DIR)
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0
    try:
        runner = _RUNNERS.get(job.get("kind"))
        if runner is None:
            raise ValueError(
                f"unknown job kind {job.get('kind')!r}; expected one of "
                f"{sorted(_RUNNERS)}")
        result = runner(job, cache)
    except Exception as exc:  # noqa: BLE001 - ships to the client
        answer["ok"] = False
        answer["error"] = {
            "stage": type(exc).__name__,
            "message": str(exc) or traceback.format_exc(limit=3),
        }
    else:
        answer["ok"] = True
        answer["result"] = result
    if cache is not None:
        if cache.hits > hits0:
            answer["cache"] = "hit"
        elif cache.misses > misses0:
            answer["cache"] = "miss"
        else:
            answer["cache"] = None
    else:
        answer["cache"] = None
    return answer
