"""``repro serve``: a batch scheduling front.

An asyncio front (:mod:`.server`) accepts JSON batches of DSL
programs over stdio or TCP, shards the jobs across a multiprocessing
pool, and streams per-job results back as JSON lines (kind
``repro-serve``, schema 1) followed by a batch summary with cache
hit rates.  :mod:`.jobs` runs one job inside a worker process (the
same :mod:`repro.api` calls the CLI makes); :mod:`.client` is the
synchronous client ``repro bench --serve`` / ``repro fuzz --serve``
use.
"""

from .jobs import SERVE_KIND, SERVE_SCHEMA, run_serve_job, schedule_payload
from .server import selftest, serve_stdio, serve_tcp

__all__ = [
    "SERVE_KIND",
    "SERVE_SCHEMA",
    "run_serve_job",
    "schedule_payload",
    "selftest",
    "serve_stdio",
    "serve_tcp",
]
