"""The ``repro serve`` asyncio front.

Protocol (JSON lines, both directions, stdio or TCP):

* request: one line per batch -- ``{"batch": [job, ...]}`` (job
  shapes in :mod:`repro.serve.jobs`);
* response: one ``{"type": "result", ...}`` line per job, streamed
  in *completion* order (match responses to jobs by ``"id"``), then
  exactly one ``{"type": "batch-summary", ...}`` line with job and
  cache-hit totals.  Every line carries ``"kind": "repro-serve"``
  and ``"schema": 1``.

Jobs fan out over a ``ProcessPoolExecutor`` whose workers share the
server's ``--cache`` directory; per-batch hit rates come from the
workers' per-job hit/miss answers.  A malformed request line answers
with a single ``{"type": "error", ...}`` line instead of tearing the
connection down.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from concurrent.futures import ProcessPoolExecutor

from .jobs import SERVE_KIND, SERVE_SCHEMA, init_worker, run_serve_job


def _line(payload: dict) -> str:
    return json.dumps({"kind": SERVE_KIND, "schema": SERVE_SCHEMA,
                       **payload}, sort_keys=True)


def _error_line(message: str) -> str:
    return _line({"type": "error", "message": message})


def _summary(answers: list[dict], seconds: float) -> str:
    hits = sum(1 for a in answers if a.get("cache") == "hit")
    misses = sum(1 for a in answers if a.get("cache") == "miss")
    looked = hits + misses
    return _line({
        "type": "batch-summary",
        "jobs": len(answers),
        "ok": sum(1 for a in answers if a.get("ok")),
        "errors": sum(1 for a in answers if not a.get("ok")),
        "cache_hits": hits,
        "cache_misses": misses,
        "hit_rate": (hits / looked) if looked else None,
        "seconds": round(seconds, 6),
    })


class ServeFront:
    """Shared executor + batch logic behind both transports."""

    def __init__(self, *, jobs: int = 2,
                 cache_dir: str | None = None) -> None:
        self.executor = ProcessPoolExecutor(
            max_workers=max(1, jobs), initializer=init_worker,
            initargs=(cache_dir,))

    def shutdown(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)

    async def handle_line(self, raw: str, write) -> None:
        """One request line -> streamed response lines via ``write``."""
        try:
            request = json.loads(raw)
        except json.JSONDecodeError as exc:
            await write(_error_line(f"bad JSON: {exc}"))
            return
        batch = request.get("batch") if isinstance(request, dict) else None
        if not isinstance(batch, list):
            await write(_error_line(
                'request must be {"batch": [job, ...]}'))
            return
        t0 = time.perf_counter()
        loop = asyncio.get_running_loop()
        pending = {
            loop.run_in_executor(self.executor, run_serve_job, job)
            for job in batch
        }
        answers: list[dict] = []
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED)
            for fut in done:
                answer = fut.result()
                answers.append(answer)
                await write(json.dumps(answer, sort_keys=True))
        await write(_summary(answers, time.perf_counter() - t0))


async def _serve_connection(front: ServeFront,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    async def write(line: str) -> None:
        writer.write(line.encode() + b"\n")
        await writer.drain()

    try:
        while True:
            raw = await reader.readline()
            if not raw:
                break
            raw = raw.decode().strip()
            if raw:
                await front.handle_line(raw, write)
    except asyncio.CancelledError:  # server stopping mid-connection
        return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass


async def _serve_tcp_async(front: ServeFront, host: str, port: int,
                           ready=None, stop: asyncio.Event | None = None
                           ) -> None:
    server = await asyncio.start_server(
        lambda r, w: _serve_connection(front, r, w), host, port)
    bound = server.sockets[0].getsockname()
    print(f"repro serve: listening on {bound[0]}:{bound[1]}",
          file=sys.stderr, flush=True)
    if ready is not None:
        ready(bound[1], asyncio.get_running_loop())
    async with server:
        if stop is None:
            await server.serve_forever()
        else:
            await stop.wait()


def serve_tcp(host: str, port: int, *, jobs: int = 2,
              cache_dir: str | None = None) -> int:
    """Blocking TCP server (``repro serve --tcp HOST:PORT``)."""
    front = ServeFront(jobs=jobs, cache_dir=cache_dir)
    try:
        asyncio.run(_serve_tcp_async(front, host, port))
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        front.shutdown()
    return 0


async def _serve_stdio_async(front: ServeFront, stdin, stdout) -> None:
    loop = asyncio.get_running_loop()

    async def write(line: str) -> None:
        stdout.write(line + "\n")
        stdout.flush()

    while True:
        raw = await loop.run_in_executor(None, stdin.readline)
        if not raw:
            break
        raw = raw.strip()
        if raw:
            await front.handle_line(raw, write)


def serve_stdio(*, jobs: int = 2, cache_dir: str | None = None,
                stdin=None, stdout=None) -> int:
    """Blocking stdio server (default ``repro serve`` transport)."""
    front = ServeFront(jobs=jobs, cache_dir=cache_dir)
    try:
        asyncio.run(_serve_stdio_async(front, stdin or sys.stdin,
                                       stdout or sys.stdout))
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        front.shutdown()
    return 0


# ----------------------------------------------------------------------
# Selftest: the CI smoke (also the round-trip harness the tests use)
# ----------------------------------------------------------------------
SELFTEST_SOURCES = {
    "stream": """
param n, q; array x, y;
for k = 0 to n { y[k] = x[k] * q + 1; }
""",
    "reduce": """
param n, acc; array x, out;
for k = 0 to n { acc = acc + x[k] * x[k]; out[k] = acc; }
""",
    "twoload": """
param n; array a, b, c;
for k = 0 to n { c[k] = a[k] * b[k] + a[k]; }
""",
    "chain": """
param n, q; array x, y;
for k = 0 to n { t = x[k] + q; u = t * t; y[k] = u - q; }
""",
    "whileacc": """
param w0, lim, acc; array x, d;
while (w0 < lim + 8) {
    acc = acc + x[w0];
    d[w0] = acc * 2;
    w0 = w0 + 1;
}
""",
    "twoloop": """
param q, acc, n; array x, y, d;
for k = 0 to n { d[k] = x[k] * q; }
for k = 0 to n { acc = acc + d[k]; y[k] = acc; }
""",
}


def selftest_batch(unroll: int = 8) -> list[dict]:
    """The 6-program mixed batch (counted, while, multi-loop)."""
    return [
        {"id": name, "kind": "schedule", "source": src, "fus": 4,
         "options": {"unroll": unroll}}
        for name, src in SELFTEST_SOURCES.items()
    ]


class TcpServeFixture:
    """A live TCP serve front on an ephemeral port (tests + selftest)."""

    def __init__(self, *, jobs: int = 2,
                 cache_dir: str | None = None) -> None:
        import queue
        import threading

        self.front = ServeFront(jobs=jobs, cache_dir=cache_dir)
        ready: queue.Queue = queue.Queue()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

        def _run() -> None:
            async def main() -> None:
                self._stop = asyncio.Event()
                await _serve_tcp_async(
                    self.front, "127.0.0.1", 0,
                    ready=lambda port, loop: ready.put((port, loop)),
                    stop=self._stop)

            asyncio.run(main())

        self.thread = threading.Thread(target=_run, daemon=True)
        self.thread.start()
        self.port, self._loop = ready.get(timeout=60)
        self.addr = f"127.0.0.1:{self.port}"

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self.thread.join(timeout=30)
        self.front.shutdown()

    def __enter__(self) -> "TcpServeFixture":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def selftest(*, jobs: int = 2) -> int:
    """Start a serve front, submit the 6-program batch twice, assert
    the second pass reports >= 5/6 cache hits with identical results.

    The CI smoke step runs exactly this (``repro serve --selftest``).
    """
    import tempfile

    from .client import submit_batch

    batch = selftest_batch()
    with tempfile.TemporaryDirectory(prefix="repro-serve-selftest-") as td:
        with TcpServeFixture(jobs=jobs, cache_dir=td) as fixture:
            first, summary1 = submit_batch(fixture.addr, batch)
            second, summary2 = submit_batch(fixture.addr, batch)
    problems = []
    for answers, which in ((first, "first"), (second, "second")):
        bad = [a["id"] for a in answers if not a.get("ok")]
        if bad:
            problems.append(f"{which} batch: failed jobs {bad}")
    if summary2.get("cache_hits", 0) < 5:
        problems.append(
            f"second batch reported {summary2.get('cache_hits')}/6 cache "
            f"hits; expected >= 5 (first batch: "
            f"{summary1.get('cache_hits')})")
    by_id_1 = {a["id"]: a.get("result") for a in first}
    by_id_2 = {a["id"]: a.get("result") for a in second}
    for job_id, res in by_id_1.items():
        if by_id_2.get(job_id) != res:
            problems.append(f"job {job_id!r}: warm result differs from cold")
    if problems:
        for p in problems:
            print(f"repro serve --selftest: FAIL: {p}", file=sys.stderr)
        return 1
    print(f"repro serve --selftest: ok -- {summary2['jobs']} jobs, "
          f"{summary2['cache_hits']} warm hits "
          f"(cold batch {summary1['seconds']:.2f}s, warm "
          f"{summary2['seconds']:.2f}s)")
    return 0
