"""Program graphs of the VLIW computation model.

A program graph is a directed graph whose nodes are VLIW instructions
(:class:`~repro.ir.instruction.Instruction`) and whose edges are the
targets of the instructions' conditional-jump-tree leaves.  The graph
owns node-id allocation and keeps predecessor sets in sync with tree
surgery, so all retargeting must go through graph methods.

Mutations feed a typed event journal (:mod:`repro.ir.events`):
observers registered with :meth:`ProgramGraph.subscribe` receive one
event per mutation, after the graph reached its post-state.  The
incremental analysis layer (:mod:`repro.analysis.incremental`)
maintains its indexes from this stream; ``version`` remains as a cheap
monotonic mutation counter for coarse-grained caches.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from . import events as ev
from .cjtree import EXIT
from .instruction import Instruction
from .operations import Operation


def build_template_index(nodes: dict[int, Instruction]) -> tuple[
        dict[int, list[tuple[int, int]]], dict[int, dict[int, int]]]:
    """Canonical template-index rebuild: tid -> sorted [(nid, uid)].

    Single source of truth for the rebuild shared by the graph's
    fallback path and the incremental ``AnalysisManager``: the
    maintained index must equal this -- orderings included, since the
    scheduler's stable sorts make tie order observable in schedules.
    Also returns the per-node mirror (nid -> {uid: tid}) the manager
    diffs against on node-level events.
    """
    index: dict[int, list[tuple[int, int]]] = {}
    node_ops: dict[int, dict[int, int]] = {}
    for nid, node in nodes.items():
        mirror = {op.uid: op.tid for op in node.all_ops()}
        if mirror:
            node_ops[nid] = mirror
        for uid, tid in mirror.items():
            index.setdefault(tid, []).append((nid, uid))
    for entries in index.values():
        entries.sort()
    return index, node_ops


class ProgramGraph:
    """A mutable VLIW program graph."""

    def __init__(self) -> None:
        self.nodes: dict[int, Instruction] = {}
        self.entry: int | None = None
        self._next_nid = 1
        self._preds: dict[int, set[int]] = {}
        self._version = 0  # bumped on every mutation (event emission)
        self._observers: list[Callable[[ev.GraphEvent], None]] = []
        self._mute = 0  # >0 while a composite mutation runs
        self._tindex: dict[int, list[tuple[int, int]]] | None = None
        self._tindex_version = -1
        #: attached incremental AnalysisManager (duck-typed; set by
        #: repro.analysis.incremental.manager_for -- ir must not import
        #: the analysis layer)
        self._analysis = None

    # ------------------------------------------------------------------
    # Event journal
    # ------------------------------------------------------------------
    def subscribe(self, observer: Callable[[ev.GraphEvent], None]) -> None:
        """Register ``observer`` to receive every future mutation event."""
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[ev.GraphEvent], None]) -> None:
        self._observers.remove(observer)

    def _emit(self, event: ev.GraphEvent) -> None:
        """Record one mutation: bump the version, notify observers.

        Inner mutations of a composite (e.g. the retargets inside
        ``delete_empty_node``) run muted: they bump the version but are
        not delivered -- the composite emits one summarizing event that
        observers can patch from.
        """
        self._version += 1
        if self._mute or not self._observers:
            return
        for observer in self._observers:
            observer(event)

    def _touch(self) -> None:
        """Coarse mutation note: emit a :class:`~repro.ir.events.BulkMutation`.

        Mutation paths that cannot describe themselves precisely call
        this (directly or legacy-style); observers respond by marking
        everything dirty.  New mutation paths should emit a typed event
        instead.
        """
        self._emit(ev.BulkMutation())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_node(self, target: int = EXIT) -> Instruction:
        """Allocate a fresh empty node whose single leaf points at ``target``."""
        nid = self._next_nid
        self._next_nid += 1
        node = Instruction(nid, target)
        self.nodes[nid] = node
        self._preds.setdefault(nid, set())
        if target != EXIT:
            self._preds.setdefault(target, set()).add(nid)
        self._emit(ev.NodeInserted(nid))
        return node

    def adopt(self, node: Instruction) -> None:
        """Insert an externally built node (e.g. from ``clone_into``)."""
        if node.nid in self.nodes:
            raise ValueError(f"node {node.nid} already present")
        self.nodes[node.nid] = node
        self._preds.setdefault(node.nid, set())
        for succ in node.successors():
            self._preds.setdefault(succ, set()).add(node.nid)
        self._emit(ev.NodeInserted(node.nid))

    def allocate_nid(self) -> int:
        nid = self._next_nid
        self._next_nid += 1
        return nid

    def set_entry(self, nid: int) -> None:
        if nid not in self.nodes:
            raise KeyError(nid)
        old = self.entry
        self.entry = nid
        self._emit(ev.EntryChanged(old, nid))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, nid: int) -> Instruction:
        return self.nodes[nid]

    def successors(self, nid: int) -> list[int]:
        return self.nodes[nid].successors()

    def predecessors(self, nid: int) -> frozenset[int]:
        return frozenset(self._preds.get(nid, ()))

    def edges(self) -> Iterator[tuple[int, int]]:
        for nid, node in self.nodes.items():
            for succ in node.successors():
                yield nid, succ

    @property
    def version(self) -> int:
        """Mutation counter; coarse caches use it to invalidate."""
        return self._version

    def find_op(self, uid: int) -> int | None:
        """Node containing the op instance ``uid`` (linear scan)."""
        for nid, node in self.nodes.items():
            if node.has_op(uid):
                return nid
        return None

    def template_index(self) -> dict[int, list[tuple[int, int]]]:
        """tid -> [(node id, uid)] for every op instance.

        Entries are in canonical ``(node id, uid)`` order, which the
        incremental maintenance reproduces exactly (uids are allocated
        monotonically, so the order is deterministic across runs).
        With an attached :class:`~repro.analysis.incremental.AnalysisManager`
        the index is patched per mutation event; otherwise it is
        rebuilt per graph version (successful code motions invalidate
        it, failed move attempts -- which never mutate -- do not).
        """
        if self._analysis is not None:
            return self._analysis.template_index()
        if self._tindex is not None and self._tindex_version == self._version:
            return self._tindex
        index, _ = build_template_index(self.nodes)
        self._tindex = index
        self._tindex_version = self._version
        return index

    def ops_by_template(self, tid: int) -> list[tuple[int, Operation]]:
        """All (node id, op) instances of the given template."""
        out = []
        for nid, uid in self.template_index().get(tid, ()):
            node = self.nodes.get(nid)
            if node is not None and node.has_op(uid):
                out.append((nid, node.get_op(uid)))
        return out

    def all_operations(self) -> Iterator[tuple[int, Operation]]:
        for nid, node in self.nodes.items():
            for op in node.all_ops():
                yield nid, op

    def op_count(self) -> int:
        return sum(node.op_count() for node in self.nodes.values())

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def reachable(self, start: int | None = None) -> list[int]:
        """Nodes reachable from ``start`` (default entry), preorder DFS."""
        root = self.entry if start is None else start
        if root is None:
            return []
        seen: list[int] = []
        seen_set: set[int] = set()
        stack = [root]
        while stack:
            nid = stack.pop()
            if nid in seen_set or nid == EXIT or nid not in self.nodes:
                continue
            seen_set.add(nid)
            seen.append(nid)
            stack.extend(reversed(self.successors(nid)))
        return seen

    def rpo(self, start: int | None = None) -> list[int]:
        """Reverse postorder from ``start`` (default entry).

        For acyclic graphs this is a topological order; for loops it is
        the conventional quasi-topological order used by dataflow
        analyses.
        """
        root = self.entry if start is None else start
        if root is None:
            return []
        post: list[int] = []
        seen: set[int] = set()

        def dfs(nid: int) -> None:
            stack: list[tuple[int, Iterator[int]]] = []
            if nid in seen or nid not in self.nodes:
                return
            seen.add(nid)
            stack.append((nid, iter(self.successors(nid))))
            while stack:
                cur, it = stack[-1]
                advanced = False
                for s in it:
                    if s not in seen and s in self.nodes:
                        seen.add(s)
                        stack.append((s, iter(self.successors(s))))
                        advanced = True
                        break
                if not advanced:
                    post.append(cur)
                    stack.pop()

        dfs(root)
        return list(reversed(post))

    def depth_map(self) -> dict[int, int]:
        """Longest-path depth from entry (acyclic graphs).

        Used as the "lower/higher in the program graph" order of the gap
        prevention rules.  Back edges are ignored (DAG assumption holds
        for unwound loop bodies, which is where depths are consulted).
        """
        order = self.rpo()
        index = {nid: i for i, nid in enumerate(order)}
        depth: dict[int, int] = {nid: 0 for nid in order}
        for nid in order:
            for s in self.successors(nid):
                if s in index and index[s] > index[nid]:  # skip back edges
                    depth[s] = max(depth[s], depth[nid] + 1)
        return depth

    # ------------------------------------------------------------------
    # Operation mutation (emits op-level events)
    # ------------------------------------------------------------------
    def add_op(self, nid: int, op: Operation,
               paths: frozenset[int] | None = None) -> None:
        """Attach a regular operation to node ``nid``."""
        self.nodes[nid].add_op(op, paths)
        self._emit(ev.OpAdded(nid, op))

    def remove_op(self, nid: int, uid: int) -> Operation:
        """Detach and return a regular operation of node ``nid``."""
        op = self.nodes[nid].remove_op(uid)
        self._emit(ev.OpRemoved(nid, op))
        return op

    def replace_op(self, nid: int, uid: int, new_op: Operation) -> None:
        """Swap an operation of node ``nid`` in place (same paths)."""
        node = self.nodes[nid]
        old = node.ops[uid]
        node.replace_op(uid, new_op)
        self._emit(ev.OpReplaced(nid, old, new_op))

    def widen_op_paths(self, nid: int, uid: int,
                       extra: frozenset[int]) -> None:
        """Make an op of ``nid`` active on additional paths (unification)."""
        self.nodes[nid].widen_paths(uid, extra)
        self._emit(ev.PathsWidened(nid, uid))

    # ------------------------------------------------------------------
    # Edge mutation (keeps predecessor sets consistent)
    # ------------------------------------------------------------------
    def retarget_leaf(self, nid: int, leaf_id: int, new_target: int) -> None:
        """Point one leaf of ``nid`` at ``new_target``."""
        node = self.nodes[nid]
        old = node.target_of_leaf(leaf_id)
        node.retarget_leaf(leaf_id, new_target)
        self._edge_removed(nid, old)
        self._edge_added(nid, new_target)
        self._emit(ev.EdgeRetargeted(nid, old, new_target))

    def retarget_all_edges(self, nid: int, old: int, new: int) -> None:
        """Point every leaf of ``nid`` targeting ``old`` at ``new``."""
        node = self.nodes[nid]
        if not node.leaves_to(old):
            return
        node.retarget_all(old, new)
        self._edge_removed(nid, old)
        self._edge_added(nid, new)
        self._emit(ev.EdgeRetargeted(nid, old, new))

    def redirect_predecessors(self, old: int, new: int,
                              only: Iterable[int] | None = None) -> None:
        """Make (selected) predecessors of ``old`` point at ``new`` instead."""
        preds = set(self._preds.get(old, ())) if only is None else set(only)
        for p in preds:
            self.retarget_all_edges(p, old, new)

    def _edge_added(self, src: int, dst: int) -> None:
        if dst != EXIT:
            self._preds.setdefault(dst, set()).add(src)

    def _edge_removed(self, src: int, dst: int) -> None:
        if dst == EXIT:
            return
        # Only drop the pred link when no leaf of src still targets dst.
        if src in self.nodes and self.nodes[src].leaves_to(dst):
            return
        self._preds.get(dst, set()).discard(src)

    def note_tree_change(self, nid: int) -> None:
        """Recompute pred links after direct tree surgery on ``nid``.

        Transformations that graft branches manipulate the instruction
        directly; they must call this afterwards (it doubles as the
        :class:`~repro.ir.events.InstructionReplaced` announcement).
        """
        node = self.nodes[nid]
        succs = set(node.successors())
        for other, preds in self._preds.items():
            if nid in preds and other not in succs:
                preds.discard(nid)
        for s in succs:
            self._preds.setdefault(s, set()).add(nid)
        self._emit(ev.InstructionReplaced(nid))

    # ------------------------------------------------------------------
    # Structural transformations
    # ------------------------------------------------------------------
    def split_for_edge(self, pred: int, nid: int) -> tuple[int, dict[int, int]]:
        """Node splitting: give ``pred`` a private copy of node ``nid``.

        All other predecessors keep pointing at the original.  Returns
        the id of the private copy and the old->new op uid map.  This is
        the PS mechanism that makes moving an operation out of a
        multi-predecessor node sound: the motion then happens on the
        private copy only.
        """
        node = self.nodes[nid]
        copy, uid_map = node.clone_with_map(self.allocate_nid())
        self.adopt(copy)
        self.retarget_all_edges(pred, nid, copy.nid)
        return copy.nid, uid_map

    def delete_empty_node(self, nid: int) -> bool:
        """Delete a node with no operations and a single fall-through leaf.

        Predecessors are retargeted at its successor.  The entry is
        moved forward if it was the deleted node.  Returns True when the
        deletion happened.  Emits one :class:`~repro.ir.events.NodeBypassed`
        (the inner retargets are muted): removing a pass-through node
        leaves every other node's traversal position unchanged, so
        structural indexes splice it out instead of rebuilding.
        """
        node = self.nodes.get(nid)
        if node is None or not node.is_empty():
            return False
        leaves = node.leaves()
        if len(leaves) != 1:
            return False
        succ = leaves[0].target
        if succ == nid:  # self-loop; leave alone
            return False
        self._mute += 1
        try:
            self.redirect_predecessors(nid, succ)
            if self.entry == nid:
                self.entry = succ if succ != EXIT else None
            del self.nodes[nid]
            self._preds.pop(nid, None)
            self._edge_removed(nid, succ)
            for preds in self._preds.values():
                preds.discard(nid)
        finally:
            self._mute -= 1
        self._emit(ev.NodeBypassed(nid, succ))
        return True

    def remove_node(self, nid: int) -> Instruction:
        """Remove an unreachable node outright (content and edges).

        The caller asserts nothing points at the node anymore; the
        paper's move-cj uses this for the vacated From node once its
        content lives on in the residue nodes.
        """
        node = self.nodes.pop(nid)
        for succ in node.successors():
            self._preds.get(succ, set()).discard(nid)
        self._preds.pop(nid, None)
        self._emit(ev.NodeRemoved(nid, node))
        return node

    def drop_unreachable(self) -> list[int]:
        """Remove nodes unreachable from the entry; returns their ids."""
        live = set(self.reachable())
        dead = [nid for nid in self.nodes if nid not in live]
        for nid in dead:
            self.remove_node(nid)
        return dead

    # ------------------------------------------------------------------
    # Copying / validation
    # ------------------------------------------------------------------
    def clone(self) -> "ProgramGraph":
        """Deep copy preserving node ids, op uids and leaf ids.

        Clones are used to snapshot a graph before transformation (for
        the simulator-based equivalence checks), so identities must be
        preserved exactly.  Observers are *not* carried over: the clone
        starts with an empty journal.
        """
        g = ProgramGraph()
        g.entry = self.entry
        g._next_nid = self._next_nid
        for nid, node in self.nodes.items():
            dup = Instruction(nid)
            dup.tree = node.tree  # CJTree values are immutable
            dup.cjs = dict(node.cjs)
            dup.ops = dict(node.ops)
            dup.paths = dict(node.paths)
            g.nodes[nid] = dup
        g._preds = {nid: set(p) for nid, p in self._preds.items()}
        return g

    def check(self) -> None:
        """Assert graph-wide invariants."""
        assert self.entry is None or self.entry in self.nodes
        for nid, node in self.nodes.items():
            assert node.nid == nid
            node.check()
            for succ in node.successors():
                assert succ == EXIT or succ in self.nodes, \
                    f"node {nid} targets missing node {succ}"
                assert succ == EXIT or nid in self._preds.get(succ, set()), \
                    f"pred link missing for edge {nid}->{succ}"
        for nid, preds in self._preds.items():
            for p in preds:
                assert p in self.nodes, f"stale pred {p} of {nid}"
                assert nid in self.nodes[p].successors(), \
                    f"pred {p} of {nid} has no such edge"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ProgramGraph entry={self.entry} nodes={len(self.nodes)} "
                f"ops={self.op_count()}>")
