"""VLIW instructions (program-graph nodes).

An instruction is a set of operations plus a conditional-jump tree
(:mod:`repro.ir.cjtree`).  Non-jump operations carry a *path set*: the
leaves of the tree on which their results commit.  This realizes the
IBM VLIW execution model the paper adopts: "IBM VLIW instructions store
only those results that were computed along the path selected by the
conditionals".

The instruction is a mutable container -- code motion adds and removes
operations -- but the operations themselves are immutable records.
"""

from __future__ import annotations

from typing import Iterator

from . import cjtree as cjt
from .cjtree import Branch, CJTree, EXIT, Leaf, make_leaf
from .operations import Operation


class Instruction:
    """One VLIW instruction / program-graph node.

    Parameters
    ----------
    nid:
        Node id within the owning :class:`~repro.ir.graph.ProgramGraph`.
    target:
        Successor node for the initial single-leaf tree.
    """

    __slots__ = ("nid", "ops", "paths", "cjs", "tree",
                 "_tree_key", "_leaves", "_leaf_ids", "_succ")

    def __init__(self, nid: int, target: int = EXIT) -> None:
        self.nid = nid
        self.ops: dict[int, Operation] = {}
        self.paths: dict[int, frozenset[int]] = {}
        self.cjs: dict[int, Operation] = {}
        self.tree: CJTree = make_leaf(target)
        # Tree-query caches, keyed on the identity of the (immutable)
        # tree value: any surgery replaces ``self.tree`` wholesale, so
        # an ``is`` check suffices to invalidate.
        self._tree_key: CJTree | None = None
        self._leaves: list[Leaf] = []
        self._leaf_ids: frozenset[int] = frozenset()
        self._succ: list[int] = []

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def _tree_queries(self) -> None:
        """Refresh the leaf/successor caches if the tree was replaced.

        These queries sit on the scheduler's hottest paths (every RPO
        walk and region sweep asks for successors); walking the CJ tree
        per call dominated profiles before the cache.
        """
        if self._tree_key is self.tree:
            return
        leaves = list(cjt.iter_leaves(self.tree))
        self._leaves = leaves
        self._leaf_ids = frozenset(l.leaf_id for l in leaves)
        succ: list[int] = []
        for l in leaves:
            if l.target != EXIT and l.target not in succ:
                succ.append(l.target)
        self._succ = succ
        self._tree_key = self.tree

    def leaves(self) -> list[Leaf]:
        """Leaves of the CJ tree, left-to-right (treat as immutable)."""
        self._tree_queries()
        return self._leaves

    def leaf_ids(self) -> frozenset[int]:
        self._tree_queries()
        return self._leaf_ids

    @property
    def all_paths(self) -> frozenset[int]:
        """The path set meaning "on every path"."""
        return self.leaf_ids()

    def successors(self) -> list[int]:
        """Distinct successor node ids, in leaf order (EXIT excluded).

        Returns a cached list -- treat as immutable.
        """
        self._tree_queries()
        return self._succ

    def leaves_to(self, target: int) -> frozenset[int]:
        """Leaf ids pointing at ``target``."""
        return frozenset(l.leaf_id for l in self.leaves() if l.target == target)

    def target_of_leaf(self, leaf_id: int) -> int:
        leaf = cjt.find_leaf(self.tree, leaf_id)
        if leaf is None:
            raise KeyError(f"leaf {leaf_id} not in node {self.nid}")
        return leaf.target

    # ------------------------------------------------------------------
    # Operation queries
    # ------------------------------------------------------------------
    def all_ops(self) -> Iterator[Operation]:
        """All operations: regular ops then conditional jumps."""
        yield from self.ops.values()
        yield from self.cjs.values()

    def op_count(self) -> int:
        """Total operations (resource slots consumed)."""
        return len(self.ops) + len(self.cjs)

    def is_empty(self) -> bool:
        return not self.ops and not self.cjs

    def has_op(self, uid: int) -> bool:
        return uid in self.ops or uid in self.cjs

    def get_op(self, uid: int) -> Operation:
        if uid in self.ops:
            return self.ops[uid]
        return self.cjs[uid]

    def paths_of(self, uid: int) -> frozenset[int]:
        """Path set of an operation (CJ ops are active below their branch)."""
        if uid in self.paths:
            return self.paths[uid]
        if uid in self.cjs:
            b = cjt.subtree_of(self.tree, uid)
            assert b is not None
            return cjt.leaf_ids(b)
        raise KeyError(f"op {uid} not in node {self.nid}")

    def ops_on(self, leaf_id: int) -> list[Operation]:
        """Regular operations committing on the given leaf."""
        return [op for uid, op in self.ops.items() if leaf_id in self.paths[uid]]

    def cjs_on(self, leaf_id: int) -> list[Operation]:
        """Conditional jumps on the root-to-leaf path of ``leaf_id``."""
        out: list[Operation] = []

        def rec(t: CJTree) -> bool:
            if isinstance(t, Leaf):
                return t.leaf_id == leaf_id
            for sub in (t.on_true, t.on_false):
                if rec(sub):
                    out.append(self.cjs[t.cj_uid])
                    return True
            return False

        rec(self.tree)
        out.reverse()
        return out

    def find_identical(self, op: Operation) -> Operation | None:
        """An op in this node computing the same thing (unification target).

        Two operations are syntactically identical when kind, dest,
        sources and memory reference all agree.  Template identity is
        *not* required: unifiable copies produced by unwinding different
        iterations still merge, which is the paper's "redundant
        operation removal" enabler.
        """
        for other in self.ops.values():
            if (other.kind is op.kind and other.dest == op.dest
                    and other.srcs == op.srcs and other.mem == op.mem):
                return other
        return None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_op(self, op: Operation, paths: frozenset[int] | None = None) -> None:
        """Attach a regular operation on ``paths`` (default: all paths)."""
        if op.is_cjump:
            raise ValueError("use add_root_cj/graft for conditional jumps")
        if op.uid in self.ops:
            raise ValueError(f"op {op.uid} already in node {self.nid}")
        p = self.all_paths if paths is None else frozenset(paths)
        if not p:
            raise ValueError("operation must be active on at least one path")
        if not p <= self.leaf_ids():
            raise ValueError(f"paths {p} not leaves of node {self.nid}")
        self.ops[op.uid] = op
        self.paths[op.uid] = p

    def widen_paths(self, uid: int, extra: frozenset[int]) -> None:
        """Make an existing op active on additional paths (unification)."""
        if not extra <= self.leaf_ids():
            raise ValueError("paths not leaves of this node")
        self.paths[uid] = self.paths[uid] | extra

    def remove_op(self, uid: int) -> Operation:
        """Detach and return a regular operation."""
        op = self.ops.pop(uid)
        del self.paths[uid]
        return op

    def remove_op_on(self, uid: int, paths: frozenset[int]) -> Operation:
        """Remove an op from the given paths only.

        If the op becomes path-less it is removed entirely.  Returns the
        operation.  Used by move-op when an op leaves along one incoming
        edge but must stay behind for the others.
        """
        op = self.ops[uid]
        remaining = self.paths[uid] - paths
        if remaining:
            self.paths[uid] = remaining
        else:
            self.remove_op(uid)
        return op

    def replace_op(self, uid: int, new_op: Operation) -> None:
        """Swap an operation in place (same paths)."""
        if uid not in self.ops:
            raise KeyError(uid)
        p = self.paths.pop(uid)
        del self.ops[uid]
        self.ops[new_op.uid] = new_op
        self.paths[new_op.uid] = p

    def add_root_cj(self, cj: Operation, true_target: int, false_target: int,
                    ) -> tuple[Leaf, Leaf]:
        """Install a conditional jump above the current tree.

        The existing tree becomes the *true* side; a fresh leaf pointing
        at ``false_target`` becomes the false side -- unless the node is
        currently a single leaf, in which case both sides become fresh
        leaves at the given targets.  Existing ops stay on their paths.
        Returns the (true, false) leaves when freshly created.
        """
        if not cj.is_cjump:
            raise ValueError("add_root_cj requires a CJUMP operation")
        if isinstance(self.tree, Leaf) and not self.ops:
            t, f = make_leaf(true_target), make_leaf(false_target)
            self.tree = Branch(cj.uid, t, f)
            self.cjs[cj.uid] = cj
            return t, f
        # Existing content rides on the true side.
        f = make_leaf(false_target)
        old = self.tree
        self.tree = Branch(cj.uid, old, f)
        self.cjs[cj.uid] = cj
        t_leaf = next(cjt.iter_leaves(old))
        return t_leaf, f

    def graft_branch(self, leaf_id: int, cj: Operation,
                     true_target: int, false_target: int) -> tuple[Leaf, Leaf]:
        """Replace a leaf by ``Branch(cj, true, false)`` (move-cj helper).

        Ops that were active on ``leaf_id`` become active on both new
        leaves.  Returns the new (true, false) leaves.
        """
        if not cj.is_cjump:
            raise ValueError("graft_branch requires a CJUMP operation")
        if cj.uid in self.cjs:
            raise ValueError(f"cj {cj.uid} already in node {self.nid}")
        t, f = make_leaf(true_target), make_leaf(false_target)
        self.tree = cjt.replace_leaf(self.tree, leaf_id, Branch(cj.uid, t, f))
        self.cjs[cj.uid] = cj
        both = frozenset({t.leaf_id, f.leaf_id})
        for uid, p in list(self.paths.items()):
            if leaf_id in p:
                self.paths[uid] = (p - {leaf_id}) | both
        return t, f

    def remove_root_cj(self, cj_uid: int, keep_true: bool) -> Operation:
        """Collapse the branch testing ``cj_uid`` to one side.

        Ops active only on the discarded side are dropped.  Returns the
        removed CJUMP operation.
        """
        b = cjt.subtree_of(self.tree, cj_uid)
        if b is None:
            raise KeyError(f"cj {cj_uid} not in node {self.nid}")
        dead = cjt.leaf_ids(b.on_false if keep_true else b.on_true)
        self.tree = cjt.remove_branch(self.tree, cj_uid, keep_true)
        for uid in list(self.ops):
            remaining = self.paths[uid] - dead
            if remaining:
                self.paths[uid] = remaining
            else:
                self.remove_op(uid)
        return self.cjs.pop(cj_uid)

    def retarget_leaf(self, leaf_id: int, target: int) -> None:
        self.tree = cjt.retarget_leaf(self.tree, leaf_id, target)

    def retarget_all(self, old: int, new: int) -> None:
        self.tree = cjt.retarget_all(self.tree, old, new)

    # ------------------------------------------------------------------
    # Duplication
    # ------------------------------------------------------------------
    def clone_into(self, nid: int) -> "Instruction":
        """Deep copy with fresh leaf ids and fresh op uids.

        Used for node splitting.  Op templates (tid) are preserved so the
        scheduler still recognizes the copies.
        """
        dup, _ = self.clone_with_map(nid)
        return dup

    def clone_with_map(self, nid: int) -> tuple["Instruction", dict[int, int]]:
        """Like :meth:`clone_into`, also returning the old->new uid map."""
        dup = Instruction(nid)
        tree, leaf_map = cjt.refresh_leaf_ids(self.tree)
        uid_map: dict[int, int] = {}
        new_cjs: dict[int, Operation] = {}
        for uid, cj in self.cjs.items():
            nc = cj.duplicate()
            uid_map[uid] = nc.uid
            new_cjs[nc.uid] = nc

        def remap(t: CJTree) -> CJTree:
            if isinstance(t, Leaf):
                return t
            return Branch(uid_map[t.cj_uid], remap(t.on_true), remap(t.on_false))

        dup.tree = remap(tree)
        dup.cjs = new_cjs
        for uid, op in self.ops.items():
            no = op.duplicate()
            uid_map[uid] = no.uid
            dup.ops[no.uid] = no
            dup.paths[no.uid] = frozenset(leaf_map[l] for l in self.paths[uid])
        return dup, uid_map

    # ------------------------------------------------------------------
    # Validation & display
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Assert internal invariants (tests call this aggressively)."""
        lids = self.leaf_ids()
        assert len(list(cjt.iter_leaves(self.tree))) == len(lids), \
            f"node {self.nid}: duplicate leaf ids"
        tree_cjs = {b.cj_uid for b in cjt.iter_branches(self.tree)}
        assert tree_cjs == set(self.cjs), \
            f"node {self.nid}: cj set mismatch {tree_cjs} vs {set(self.cjs)}"
        for uid, op in self.ops.items():
            assert op.uid == uid
            assert not op.is_cjump
            assert self.paths[uid], f"node {self.nid}: op {uid} path-less"
            assert self.paths[uid] <= lids, f"node {self.nid}: op {uid} stale paths"
        for uid, cj in self.cjs.items():
            assert cj.uid == uid and cj.is_cjump
        # At most one register writer per path (VLIW well-formedness).
        for leaf in self.leaves():
            writers: dict[str, int] = {}
            for op in self.ops_on(leaf.leaf_id):
                if op.dest is not None:
                    prev = writers.setdefault(op.dest.name, op.uid)
                    assert prev == op.uid, (
                        f"node {self.nid}: two writers of {op.dest} on leaf "
                        f"{leaf.leaf_id}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        labels = ",".join(op.label for op in self.all_ops())
        return f"<node {self.nid} [{labels}] -> {self.successors() or 'EXIT'}>"
