"""Operations: the "conventional" single-cycle VLIW primitives.

A VLIW *instruction* (node) is a set of operations, per the paper's
section 2: ``A = B op C``, ``load``/``store``, ``jump-cond`` and so on.
Each operation is an immutable record; code motion never mutates an
operation, it re-attaches (possibly renamed copies of) operations to
instructions.

Identity model
--------------
* ``uid``   -- unique per operation *instance*.  Node splitting and
  speculative duplication create new instances with fresh uids.
* ``tid``   -- *template* id: stable across copies, renames and moves.
  Priorities, Moveable-ops bookkeeping and schedule tables are keyed by
  template so that a duplicated operation is still "the same operation"
  to the scheduler.
* ``iteration`` -- which unwound loop iteration the operation belongs
  to (``-1`` for non-loop code).  Perfect Pipelining's ranking rule and
  the Gapless-move test are defined in terms of this tag.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum, auto

from .registers import Imm, Operand, Reg


class OpKind(Enum):
    """Kinds of conventional operations."""

    CONST = auto()   # dest <- imm
    COPY = auto()    # dest <- src            (renaming artifact; never blocks motion)
    ADD = auto()
    SUB = auto()
    MUL = auto()
    DIV = auto()
    NEG = auto()
    MIN = auto()
    MAX = auto()
    ABS = auto()
    AND = auto()
    OR = auto()
    XOR = auto()
    NOT = auto()
    SHL = auto()
    SHR = auto()
    CMP_EQ = auto()
    CMP_NE = auto()
    CMP_LT = auto()
    CMP_LE = auto()
    CMP_GT = auto()
    CMP_GE = auto()
    LOAD = auto()    # dest <- mem[array][index]
    STORE = auto()   # mem[array][index] <- src
    CJUMP = auto()   # conditional jump; branching encoded in the node's CJ tree
    NOP = auto()


#: Kinds that read memory.
MEMORY_READS = frozenset({OpKind.LOAD})
#: Kinds that write memory.
MEMORY_WRITES = frozenset({OpKind.STORE})
#: Kinds with two register/immediate sources and an arithmetic meaning.
BINARY_KINDS = frozenset(
    {
        OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV, OpKind.MIN, OpKind.MAX,
        OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.SHL, OpKind.SHR,
        OpKind.CMP_EQ, OpKind.CMP_NE, OpKind.CMP_LT, OpKind.CMP_LE,
        OpKind.CMP_GT, OpKind.CMP_GE,
    }
)
#: Kinds with one source.
UNARY_KINDS = frozenset({OpKind.COPY, OpKind.NEG, OpKind.ABS, OpKind.NOT})


@dataclass(frozen=True, slots=True)
class MemRef:
    """A symbolic memory reference ``array[index + offset]``.

    ``affine`` carries the iteration-normalized absolute index when the
    access pattern is provably affine in the loop counter (the unwinder
    fills it in); it enables exact disambiguation of ``x[k]`` in
    iteration *i* against ``x[k+1]`` in iteration *j*.  ``None`` means
    "unknown index", which the dependence tester treats conservatively.
    """

    array: str
    index: Operand | None = None  # register or immediate index; None = scalar cell
    offset: int = 0
    affine: int | None = None

    def with_affine(self, value: int | None) -> "MemRef":
        return replace(self, affine=value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.index is None:
            inner = str(self.offset) if self.affine is None else f"@{self.affine}"
        else:
            inner = f"{self.index!r}"
            if self.offset:
                inner += f"{self.offset:+d}"
            if self.affine is not None:
                inner += f"@{self.affine}"
        return f"{self.array}[{inner}]"


_uid_counter = itertools.count(1)


def next_uid() -> int:
    """Globally unique operation-instance id."""
    return next(_uid_counter)


@dataclass(frozen=True, slots=True)
class Operation:
    """One conventional operation.

    Attributes
    ----------
    uid / tid / iteration:
        Identity, see module docstring.
    kind:
        The :class:`OpKind`.
    dest:
        Destination register, or ``None`` for STORE / CJUMP / NOP.
    srcs:
        Source operands.  For STORE the stored value is ``srcs[0]``.
        For CJUMP the condition register is ``srcs[0]``.
    mem:
        Memory reference for LOAD / STORE.
    name:
        Human-readable label (the paper's ``a``..``g``); defaults to a
        derived label.  Preserved across copies and renames.
    pos:
        Original textual position (sequence number in the source
        program).  Tie-breaker for heuristics; the paper observes that
        "important operations tend to occur textually before less
        important ones".
    """

    kind: OpKind
    dest: Reg | None = None
    srcs: tuple[Operand, ...] = ()
    mem: MemRef | None = None
    name: str = ""
    iteration: int = -1
    pos: int = 0
    uid: int = field(default_factory=next_uid)
    tid: int = -1

    def __post_init__(self) -> None:
        if self.tid == -1:
            object.__setattr__(self, "tid", self.uid)
        _validate(self)

    # ------------------------------------------------------------------
    # Dataflow facets
    # ------------------------------------------------------------------
    def uses(self) -> frozenset[Reg]:
        """Registers read by this operation (including memory index)."""
        regs = {s for s in self.srcs if isinstance(s, Reg)}
        if self.mem is not None and isinstance(self.mem.index, Reg):
            regs.add(self.mem.index)
        return frozenset(regs)

    def defs(self) -> frozenset[Reg]:
        """Registers written by this operation."""
        return frozenset((self.dest,)) if self.dest is not None else frozenset()

    @property
    def reads_memory(self) -> bool:
        return self.kind in MEMORY_READS

    @property
    def writes_memory(self) -> bool:
        return self.kind in MEMORY_WRITES

    @property
    def is_cjump(self) -> bool:
        return self.kind is OpKind.CJUMP

    @property
    def is_copy(self) -> bool:
        return self.kind is OpKind.COPY

    @property
    def has_side_effect(self) -> bool:
        """True when the op cannot be removed even if its dest is dead."""
        return self.writes_memory or self.is_cjump

    # ------------------------------------------------------------------
    # Copy/update helpers (operations are immutable)
    # ------------------------------------------------------------------
    def duplicate(self) -> "Operation":
        """A fresh instance (new uid) of the same template."""
        return replace(self, uid=next_uid())

    def with_dest(self, dest: Reg) -> "Operation":
        """Renamed instance writing ``dest`` (new uid, same template)."""
        return replace(self, dest=dest, uid=next_uid())

    def with_srcs(self, srcs: tuple[Operand, ...]) -> "Operation":
        """Instance with substituted sources (new uid, same template)."""
        return replace(self, srcs=srcs, uid=next_uid())

    def with_iteration(self, iteration: int) -> "Operation":
        return replace(self, iteration=iteration, uid=next_uid())

    def substitute_use(self, old: Reg, new: Operand) -> "Operation":
        """Replace every read of ``old`` with ``new``.

        This implements the paper's copy-substitution: "we simply change
        the use of B into a use of X".  Memory index registers are
        substituted only when ``new`` is itself an operand usable as an
        index.
        """
        srcs = tuple(new if s == old else s for s in self.srcs)
        mem = self.mem
        if mem is not None and mem.index == old:
            mem = replace(mem, index=new)
        return replace(self, srcs=srcs, mem=mem, uid=next_uid())

    @property
    def label(self) -> str:
        """Short display label (``name`` or a derived one)."""
        return self.name or f"{self.kind.name.lower()}#{self.tid}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        it = f"[{self.iteration}]" if self.iteration >= 0 else ""
        if self.kind is OpKind.STORE:
            body = f"{self.mem!r} <- {self.srcs[0]!r}"
        elif self.kind is OpKind.LOAD:
            body = f"{self.dest!r} <- {self.mem!r}"
        elif self.kind is OpKind.CJUMP:
            body = f"if {self.srcs[0]!r}"
        elif self.kind is OpKind.CONST:
            body = f"{self.dest!r} <- {self.srcs[0]!r}"
        elif self.kind is OpKind.NOP:
            body = "nop"
        else:
            args = ", ".join(repr(s) for s in self.srcs)
            body = f"{self.dest!r} <- {self.kind.name.lower()}({args})"
        tag = self.name or f"#{self.tid}"
        return f"<{tag}{it} {body}>"


def _validate(op: Operation) -> None:
    k = op.kind
    if k is OpKind.STORE:
        if op.dest is not None or op.mem is None or len(op.srcs) != 1:
            raise ValueError(f"malformed STORE: {op.dest=} {op.mem=} {op.srcs=}")
    elif k is OpKind.LOAD:
        if op.dest is None or op.mem is None:
            raise ValueError(f"malformed LOAD: {op.dest=} {op.mem=}")
    elif k is OpKind.CJUMP:
        if op.dest is not None or len(op.srcs) != 1:
            raise ValueError(f"malformed CJUMP: {op.dest=} {op.srcs=}")
    elif k is OpKind.NOP:
        pass
    elif k is OpKind.CONST:
        if op.dest is None or len(op.srcs) != 1 or not isinstance(op.srcs[0], Imm):
            raise ValueError(f"malformed CONST: {op.dest=} {op.srcs=}")
    elif k in UNARY_KINDS:
        if op.dest is None or len(op.srcs) != 1:
            raise ValueError(f"malformed unary {k.name}: {op.dest=} {op.srcs=}")
    elif k in BINARY_KINDS:
        if op.dest is None or len(op.srcs) != 2:
            raise ValueError(f"malformed binary {k.name}: {op.dest=} {op.srcs=}")


# ----------------------------------------------------------------------
# Convenience constructors (used heavily by tests and workloads)
# ----------------------------------------------------------------------
def _r(x: Operand | str | int | float) -> Operand:
    if isinstance(x, (Reg, Imm)):
        return x
    if isinstance(x, str):
        return Reg(x)
    return Imm(x)


def make_binary(kind: OpKind, dest: str | Reg, a, b, *, name: str = "",
                iteration: int = -1, pos: int = 0) -> Operation:
    """Build a binary operation from loosely-typed arguments."""
    d = dest if isinstance(dest, Reg) else Reg(dest)
    return Operation(kind, d, (_r(a), _r(b)), name=name, iteration=iteration, pos=pos)


def add(dest, a, b, **kw) -> Operation:
    return make_binary(OpKind.ADD, dest, a, b, **kw)


def sub(dest, a, b, **kw) -> Operation:
    return make_binary(OpKind.SUB, dest, a, b, **kw)


def mul(dest, a, b, **kw) -> Operation:
    return make_binary(OpKind.MUL, dest, a, b, **kw)


def div(dest, a, b, **kw) -> Operation:
    return make_binary(OpKind.DIV, dest, a, b, **kw)


def cmp_lt(dest, a, b, **kw) -> Operation:
    return make_binary(OpKind.CMP_LT, dest, a, b, **kw)


def cmp_ge(dest, a, b, **kw) -> Operation:
    return make_binary(OpKind.CMP_GE, dest, a, b, **kw)


def copy(dest, src, *, name: str = "", iteration: int = -1, pos: int = 0) -> Operation:
    d = dest if isinstance(dest, Reg) else Reg(dest)
    return Operation(OpKind.COPY, d, (_r(src),), name=name, iteration=iteration, pos=pos)


def const(dest, value, *, name: str = "", iteration: int = -1, pos: int = 0) -> Operation:
    d = dest if isinstance(dest, Reg) else Reg(dest)
    return Operation(OpKind.CONST, d, (Imm(value),), name=name, iteration=iteration, pos=pos)


def load(dest, array: str, index=None, offset: int = 0, *, affine: int | None = None,
         name: str = "", iteration: int = -1, pos: int = 0) -> Operation:
    d = dest if isinstance(dest, Reg) else Reg(dest)
    idx = None if index is None else _r(index)
    return Operation(OpKind.LOAD, d, (), MemRef(array, idx, offset, affine),
                     name=name, iteration=iteration, pos=pos)


def store(array: str, src, index=None, offset: int = 0, *, affine: int | None = None,
          name: str = "", iteration: int = -1, pos: int = 0) -> Operation:
    idx = None if index is None else _r(index)
    return Operation(OpKind.STORE, None, (_r(src),), MemRef(array, idx, offset, affine),
                     name=name, iteration=iteration, pos=pos)


def cjump(cond, *, name: str = "", iteration: int = -1, pos: int = 0) -> Operation:
    return Operation(OpKind.CJUMP, None, (_r(cond),), name=name, iteration=iteration, pos=pos)


def nop(**kw) -> Operation:
    return Operation(OpKind.NOP, **kw)
