"""Loop descriptors: counted loops, non-counted loops, loop programs.

Every Livermore kernel in the paper's Table 1 is a counted inner loop.
:class:`CountedLoop` packages the sequential program graph together
with the metadata the unwinder needs: which register is the induction
variable, its step, the loop bound, and which operations implement the
loop control (increment, exit compare, exit jump).

The sequential lowering is::

    preheader ops                # invariants, counter init
    header:  body op 1           # one op per node, reads counter
             ...
             counter += step     # increment
             cond = counter >= bound
             if cond -> EXIT     # else fall through (back edge)

so a sequential iteration costs ``len(body) + 3`` cycles, which is the
baseline of every speedup we report.

Beyond the paper's evaluation shape, GRiP's percolation framework is
defined over arbitrary CJ-tree control flow, so this module also
describes

* :class:`WhileLoop` -- a non-counted (``while``-condition) loop whose
  trip count is **unknown at compile time**: the condition is computed
  at the loop header every iteration and a conditional jump exits when
  it is false.  The unwinder and Perfect Pipelining decline these
  (there is no static iteration tag to rank by); scheduling compacts
  the body within one iteration instead
  (:func:`repro.pipelining.program.compact_while`).
* :class:`InnerWhile` -- a while loop nested *inside* another loop's
  body (``while`` in ``while``, ``while`` in ``for``).  The host
  descriptor keeps its flat ``body_ops`` list; each inner loop records
  the ``anchor`` index at which it is spliced, and recurses.
* :class:`LoopProgram` -- a sequence of top-level loops (counted or
  not) sharing scalar/array state, plus one program-level epilogue
  that makes scalar results observable through memory.  Loops are
  scheduled as segments and re-concatenated with :func:`concat_graphs`;
  the pass pipeline (:mod:`repro.pipelining.passes`) normalizes each
  segment with explicit pre/post scalar chunks (:class:`SegmentPlan` /
  :class:`ProgramPlan`) so cross-segment transforms have somewhere to
  put code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .builder import SequentialBuilder, straightline_graph
from .cjtree import Branch, CJTree, EXIT, Leaf
from .graph import ProgramGraph
from .instruction import Instruction
from .operations import Operation, add, cjump, cmp_ge
from .registers import Imm, Operand, Reg


@dataclass
class CountedLoop:
    """A single counted loop in sequential one-op-per-node form."""

    graph: ProgramGraph
    name: str
    preheader_ops: list[Operation]
    body_ops: list[Operation]           # excludes control (incr/cmp/cjump)
    counter: Reg
    bound: Operand                      # register or immediate upper bound
    step: int
    header: int                         # first body node id
    incr_op: Operation | None = None
    cmp_op: Operation | None = None
    cj_op: Operation | None = None
    #: registers carried across iterations other than the counter
    carried_regs: frozenset[Reg] = frozenset()
    #: code after the loop (e.g. stores of scalar results)
    epilogue_ops: list[Operation] = field(default_factory=list)
    #: human description for reports
    description: str = ""
    #: registers read by code *after* this loop when it is one segment
    #: of a :class:`LoopProgram` (later loops, the program epilogue).
    #: Unwinding must not rename them away and per-segment scheduling
    #: passes them as ``exit_live`` so clean-up keeps their producers.
    live_out: frozenset[Reg] = frozenset()

    @property
    def control_ops(self) -> list[Operation]:
        return [op for op in (self.incr_op, self.cmp_op, self.cj_op)
                if op is not None]

    @property
    def ops_per_iteration(self) -> int:
        """Sequential cycles per iteration (one op per node)."""
        return len(self.body_ops) + len(self.control_ops)

    def all_loop_ops(self) -> list[Operation]:
        return list(self.body_ops) + self.control_ops


def build_counted_loop(name: str, preheader: Sequence[Operation],
                       body: Sequence[Operation], counter: Reg | str,
                       bound: Operand | int, step: int = 1,
                       carried: Sequence[Reg | str] = (),
                       epilogue: Sequence[Operation] = (),
                       description: str = "",
                       live_out: Sequence[Reg | str] = ()) -> CountedLoop:
    """Assemble the canonical sequential loop graph.

    ``body`` operations read the counter directly; the builder appends
    the increment / compare / jump control tail and wires the back
    edge.  ``epilogue`` operations (scalar-result stores etc.) run
    after the loop exits.
    """
    k = counter if isinstance(counter, Reg) else Reg(counter)
    b = bound if isinstance(bound, (Reg, Imm)) else Imm(bound)
    builder = SequentialBuilder()
    pos = 0
    pre_ops: list[Operation] = []
    for op in preheader:
        op = _at(op, pos)
        pre_ops.append(op)
        builder.append(op)
        pos += 1
    body_nodes = []
    body_ops: list[Operation] = []
    header = None
    for op in body:
        op = _at(op, pos)
        body_ops.append(op)
        node = builder.append(op)
        if header is None:
            header = node.nid
        body_nodes.append(node)
        pos += 1
    cond = Reg(f"{k.name}.exit")
    incr = _at(add(k, k, step, name="inc"), pos)
    cmp_ = _at(cmp_ge(cond, k, b, name="cmp"), pos + 1)
    cj = _at(cjump(cond, name="br"), pos + 2)
    n_incr = builder.append(incr)
    if header is None:
        header = n_incr.nid
    builder.append(cmp_)
    cj_node = builder.append_cjump(cj, true_target=EXIT)
    builder.close_loop(header)
    pos += 3
    epi_ops: list[Operation] = []
    if epilogue:
        epi_builder = SequentialBuilder(builder.graph)
        epi_head: int | None = None
        for op in epilogue:
            op = _at(op, pos)
            pos += 1
            epi_ops.append(op)
            node = epi_builder.append(op)
            if epi_head is None:
                epi_head = node.nid
        true_leaf = [l for l in cj_node.leaves() if l.target == EXIT][0]
        builder.graph.retarget_leaf(cj_node.nid, true_leaf.leaf_id, epi_head)
    return CountedLoop(
        graph=builder.graph, name=name, preheader_ops=pre_ops,
        body_ops=body_ops, counter=k, bound=b, step=step, header=header,
        incr_op=incr, cmp_op=cmp_, cj_op=cj,
        carried_regs=frozenset(r if isinstance(r, Reg) else Reg(r)
                               for r in carried),
        epilogue_ops=epi_ops,
        description=description,
        live_out=frozenset(r if isinstance(r, Reg) else Reg(r)
                           for r in live_out))


def _at(op: Operation, pos: int) -> Operation:
    """Stamp the textual position (the heuristic tie-breaker)."""
    if op.pos == pos:
        return op
    from dataclasses import replace

    return replace(op, pos=pos)


# ----------------------------------------------------------------------
# Non-counted loops
# ----------------------------------------------------------------------
@dataclass
class InnerWhile:
    """A while loop nested inside a host loop body.

    The host keeps its flat ``body_ops``; ``anchor`` is the index into
    that list at which this loop runs (all host body ops before the
    anchor execute first, then this loop to completion, then the
    rest).  ``inner`` recurses for deeper nesting.  When used as a
    *spec* handed to :func:`build_while_loop`, ``cj_op``/``header`` are
    unset; the builder returns a copy with them filled and all ops
    position-stamped.
    """

    name: str
    anchor: int
    cond_ops: list[Operation]
    exit_reg: Reg
    body_ops: list[Operation]
    cj_op: Operation | None = None
    header: int | None = None
    inner: "list[InnerWhile]" = field(default_factory=list)

    @property
    def total_ops(self) -> int:
        """Distinct operations in this loop, nested loops included."""
        return (len(self.cond_ops) + 1 + len(self.body_ops)
                + sum(iw.total_ops for iw in self.inner))

    def all_loop_ops(self) -> list[Operation]:
        cj = [self.cj_op] if self.cj_op is not None else []
        return list(self.cond_ops) + cj + _spliced_body(self.body_ops,
                                                        self.inner)


def _spliced_body(body_ops: Sequence[Operation],
                  inner: "Sequence[InnerWhile]") -> list[Operation]:
    """Body ops with each nested loop's ops spliced at its anchor."""
    out: list[Operation] = []
    idx = 0
    for iw in inner:
        out.extend(body_ops[idx:iw.anchor])
        idx = iw.anchor
        out.extend(iw.all_loop_ops())
    out.extend(body_ops[idx:])
    return out


@dataclass
class WhileLoop:
    """A non-counted loop: trip count unknown until run time.

    Sequential shape (one op per node)::

        preheader ops
        header:  cond op 1          # recompute the condition ...
                 ...
                 exit = (cond == 0) # ... and its exit polarity
                 if exit -> EXIT    # else fall through into the body
        body op 1
        ...
        back edge -> header

    There is no induction variable and no static bound, so the
    unwinder/Perfect Pipelining **decline** this shape; scheduling
    compacts the condition and body regions within one iteration.
    """

    graph: ProgramGraph
    name: str
    preheader_ops: list[Operation]
    #: per-iteration condition computation, ending in the op defining
    #: the exit register (nonzero = leave the loop)
    cond_ops: list[Operation]
    cj_op: Operation
    body_ops: list[Operation]
    header: int                         # first condition node
    carried_regs: frozenset[Reg] = frozenset()
    epilogue_ops: list[Operation] = field(default_factory=list)
    description: str = ""
    live_out: frozenset[Reg] = frozenset()
    #: nested while loops spliced into ``body_ops`` (anchor order)
    inner: list[InnerWhile] = field(default_factory=list)

    #: static trip count -- by definition unknown
    trip_count = None

    @property
    def control_ops(self) -> list[Operation]:
        return [self.cj_op]

    @property
    def ops_per_iteration(self) -> int:
        """Sequential cycles per outer iteration (one op per node).

        Nested loops' trip counts are unknown too; their ops are counted
        once, so this is the work metric for one pass in which every
        nested loop runs a single iteration.
        """
        return (len(self.cond_ops) + len(self.body_ops) + 1
                + sum(iw.total_ops for iw in self.inner))

    def all_loop_ops(self) -> list[Operation]:
        return (list(self.cond_ops) + [self.cj_op]
                + _spliced_body(self.body_ops, self.inner))


def _emit_inner_while(builder: SequentialBuilder, spec: InnerWhile,
                      pos: int) -> tuple[InnerWhile, int]:
    """Emit one nested while into the host chain, recursing for its own
    nested loops, and leave the builder resumed at the loop's exit."""
    if not spec.body_ops and not spec.inner:
        raise ValueError(f"while loop {spec.name!r} has an empty body")
    er = (spec.exit_reg if isinstance(spec.exit_reg, Reg)
          else Reg(spec.exit_reg))
    if not any(op.dest == er for op in spec.cond_ops):
        raise ValueError(
            f"while loop {spec.name!r}: no condition op defines {er.name}")
    cond_ops: list[Operation] = []
    header: int | None = None
    for op in spec.cond_ops:
        op = _at(op, pos)
        cond_ops.append(op)
        node = builder.append(op)
        if header is None:
            header = node.nid
        pos += 1
    cj = _at(cjump(er, name=f"wbr.{spec.name}"), pos)
    pos += 1
    cj_node = builder.append_cjump(cj, true_target=EXIT)
    if header is None:  # pragma: no cover - cond always non-empty here
        header = cj_node.nid
    body_ops, nested, pos = _emit_while_body(
        builder, spec.name, spec.body_ops, spec.inner, pos)
    builder.close_loop(header)
    # The inner back edge consumed the chain's fall-through; the build
    # continues from the exit jump's still-open true leaf.
    builder.resume(cj_node)
    return InnerWhile(name=spec.name, anchor=spec.anchor, cond_ops=cond_ops,
                      exit_reg=er, body_ops=body_ops, cj_op=cj,
                      header=header, inner=nested), pos


def _emit_while_body(builder: SequentialBuilder, name: str,
                     body: Sequence[Operation],
                     inner: Sequence[InnerWhile], pos: int
                     ) -> tuple[list[Operation], list[InnerWhile], int]:
    """Append body ops, splicing nested loops at their anchors."""
    body_ops: list[Operation] = []
    inner_loops: list[InnerWhile] = []
    idx = 0
    for spec in inner:
        if not (idx <= spec.anchor <= len(body)):
            raise ValueError(
                f"while loop {name!r}: inner loop {spec.name!r} anchor "
                f"{spec.anchor} out of order for a {len(body)}-op body")
        while idx < spec.anchor:
            op = _at(body[idx], pos)
            body_ops.append(op)
            builder.append(op)
            pos += 1
            idx += 1
        built, pos = _emit_inner_while(builder, spec, pos)
        inner_loops.append(built)
    for op in body[idx:]:
        op = _at(op, pos)
        body_ops.append(op)
        builder.append(op)
        pos += 1
    return body_ops, inner_loops, pos


def build_while_loop(name: str, preheader: Sequence[Operation],
                     cond: Sequence[Operation], exit_reg: Reg | str,
                     body: Sequence[Operation],
                     carried: Sequence[Reg | str] = (),
                     epilogue: Sequence[Operation] = (),
                     description: str = "",
                     live_out: Sequence[Reg | str] = (),
                     inner: Sequence[InnerWhile] = ()) -> WhileLoop:
    """Assemble the canonical sequential while-loop graph.

    ``cond`` operations recompute the exit condition each iteration;
    ``exit_reg`` must be defined by one of them (nonzero means leave
    the loop).  ``body`` must be non-empty: a body-less while never
    changes the state its condition reads and cannot terminate.
    ``inner`` holds :class:`InnerWhile` specs (anchor order) for loops
    nested in the body; each is emitted in place with its own back
    edge, and the chain resumes from its exit jump.
    """
    if not body and not inner:
        raise ValueError(f"while loop {name!r} has an empty body")
    er = exit_reg if isinstance(exit_reg, Reg) else Reg(exit_reg)
    if not any(op.dest == er for op in cond):
        raise ValueError(
            f"while loop {name!r}: no condition op defines {er.name}")
    builder = SequentialBuilder()
    pos = 0
    pre_ops: list[Operation] = []
    for op in preheader:
        op = _at(op, pos)
        pre_ops.append(op)
        builder.append(op)
        pos += 1
    cond_ops: list[Operation] = []
    header: int | None = None
    for op in cond:
        op = _at(op, pos)
        cond_ops.append(op)
        node = builder.append(op)
        if header is None:
            header = node.nid
        pos += 1
    cj = _at(cjump(er, name="wbr"), pos)
    pos += 1
    cj_node = builder.append_cjump(cj, true_target=EXIT)
    if header is None:  # pragma: no cover - cond always non-empty here
        header = cj_node.nid
    body_ops, inner_loops, pos = _emit_while_body(
        builder, name, body, inner, pos)
    builder.close_loop(header)
    epi_ops: list[Operation] = []
    if epilogue:
        epi_builder = SequentialBuilder(builder.graph)
        epi_head: int | None = None
        for op in epilogue:
            op = _at(op, pos)
            pos += 1
            epi_ops.append(op)
            node = epi_builder.append(op)
            if epi_head is None:
                epi_head = node.nid
        true_leaf = [l for l in cj_node.leaves() if l.target == EXIT][0]
        builder.graph.retarget_leaf(cj_node.nid, true_leaf.leaf_id, epi_head)
    return WhileLoop(
        graph=builder.graph, name=name, preheader_ops=pre_ops,
        cond_ops=cond_ops, cj_op=cj, body_ops=body_ops, header=header,
        carried_regs=frozenset(r if isinstance(r, Reg) else Reg(r)
                               for r in carried),
        epilogue_ops=epi_ops, description=description,
        live_out=frozenset(r if isinstance(r, Reg) else Reg(r)
                           for r in live_out),
        inner=inner_loops)


# ----------------------------------------------------------------------
# Loop programs (sequenced loops sharing state)
# ----------------------------------------------------------------------
AnyLoop = "CountedLoop | WhileLoop"


@dataclass
class LoopProgram:
    """A sequence of top-level loops plus a program-level epilogue.

    ``graph`` is the combined sequential reference: each member loop's
    one-op-per-node graph concatenated in order (loop *i* exits into
    loop *i+1*'s preheader), ending in the epilogue chain.  Member
    descriptors keep their own standalone graphs -- per-segment
    scheduling works on those and re-concatenates the results.
    """

    graph: ProgramGraph
    name: str
    loops: "list[CountedLoop | WhileLoop]"
    epilogue_ops: list[Operation] = field(default_factory=list)
    description: str = ""

    @property
    def ops_per_iteration(self) -> int:
        """Sequential cycles for one iteration of *every* member loop.

        The per-kernel work metric reports and bench weights use; for a
        single-loop program it equals the member's own value.
        """
        return sum(lp.ops_per_iteration for lp in self.loops)

    @property
    def trip_count_known(self) -> bool:
        return all(isinstance(lp, CountedLoop) for lp in self.loops)

    def counted_loops(self) -> "list[CountedLoop]":
        return [lp for lp in self.loops if isinstance(lp, CountedLoop)]


# ----------------------------------------------------------------------
# Normalized program plans (the pass pipeline's working form)
# ----------------------------------------------------------------------
@dataclass
class SegmentPlan:
    """One loop segment with explicit scalar chunks around it.

    ``pre_ops`` runs once before the loop, ``post_ops`` once after it.
    Normalization starts both empty (the loop's own preheader stays
    inside its graph, where the segment scheduler packs it); the
    cross-segment passes are what populate and drain them -- hoisting
    grows the loop's preheader, slack motion drains a neighbor's
    ``post_ops`` into the loop's idle slots.
    """

    loop: "CountedLoop | WhileLoop"
    pre_ops: list[Operation] = field(default_factory=list)
    post_ops: list[Operation] = field(default_factory=list)


@dataclass
class ProgramPlan:
    """A :class:`LoopProgram` normalized for the pass pipeline.

    The plan owns mutable copies of the segment sequence; the source
    program and its sequential reference graph are never touched, so
    equivalence checks always compare against the original semantics.
    """

    program: LoopProgram
    segments: "list[SegmentPlan]" = field(default_factory=list)

    def residual_epilogue(self) -> list[Operation]:
        """Scalar ops still running after the last loop (post motion)."""
        return list(self.segments[-1].post_ops) if self.segments else []


def _remap_tree(tree: CJTree, nid_map: dict[int, int]) -> CJTree:
    """Rewrite leaf targets through ``nid_map`` (EXIT stays EXIT)."""
    if isinstance(tree, Leaf):
        target = tree.target
        if target != EXIT and target in nid_map:
            return tree.retarget(nid_map[target])
        return tree
    return Branch(tree.cj_uid,
                  _remap_tree(tree.on_true, nid_map),
                  _remap_tree(tree.on_false, nid_map))


def concat_graphs(
        graphs: "Sequence[ProgramGraph | Sequence[Operation]]",
) -> ProgramGraph:
    """Chain program graphs: every EXIT of graph *i* enters graph *i+1*.

    Nodes are re-housed under fresh node ids in the output graph (leaf
    ids and operation instances are preserved -- they are globally
    unique already).  The result's entry is the first non-empty graph's
    entry; the last graph's EXIT leaves remain the program exit.

    A part may also be a bare operation sequence -- the scalar chunk of
    a :class:`SegmentPlan` -- which is spliced as a one-op-per-node
    straight-line graph (empty chunks vanish).
    """
    out = ProgramGraph()
    parts = []
    for g in graphs:
        if not isinstance(g, ProgramGraph):
            if not g:
                continue
            g = straightline_graph(g)
        if g.entry is not None:
            parts.append(g)
    nid_maps: list[dict[int, int]] = []
    for g in parts:
        nid_map = {nid: out.allocate_nid() for nid in g.nodes}
        nid_maps.append(nid_map)
        for nid, node in g.nodes.items():
            dup = Instruction(nid_map[nid])
            dup.tree = _remap_tree(node.tree, nid_map)
            dup.cjs = dict(node.cjs)
            dup.ops = dict(node.ops)
            dup.paths = dict(node.paths)
            out.adopt(dup)
    for i, g in enumerate(parts[:-1]):
        next_entry = nid_maps[i + 1][parts[i + 1].entry]
        for nid in g.nodes:
            new_nid = nid_maps[i][nid]
            for leaf in list(out.nodes[new_nid].leaves()):
                if leaf.target == EXIT:
                    out.retarget_leaf(new_nid, leaf.leaf_id, next_entry)
    if parts:
        out.set_entry(nid_maps[0][parts[0].entry])
    return out
