"""Counted loops: the canonical workload shape of the evaluation.

Every Livermore kernel in the paper's Table 1 is a counted inner loop.
:class:`CountedLoop` packages the sequential program graph together
with the metadata the unwinder needs: which register is the induction
variable, its step, the loop bound, and which operations implement the
loop control (increment, exit compare, exit jump).

The sequential lowering is::

    preheader ops                # invariants, counter init
    header:  body op 1           # one op per node, reads counter
             ...
             counter += step     # increment
             cond = counter >= bound
             if cond -> EXIT     # else fall through (back edge)

so a sequential iteration costs ``len(body) + 3`` cycles, which is the
baseline of every speedup we report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .builder import SequentialBuilder
from .cjtree import EXIT
from .graph import ProgramGraph
from .operations import Operation, add, cjump, cmp_ge
from .registers import Imm, Operand, Reg


@dataclass
class CountedLoop:
    """A single counted loop in sequential one-op-per-node form."""

    graph: ProgramGraph
    name: str
    preheader_ops: list[Operation]
    body_ops: list[Operation]           # excludes control (incr/cmp/cjump)
    counter: Reg
    bound: Operand                      # register or immediate upper bound
    step: int
    header: int                         # first body node id
    incr_op: Operation | None = None
    cmp_op: Operation | None = None
    cj_op: Operation | None = None
    #: registers carried across iterations other than the counter
    carried_regs: frozenset[Reg] = frozenset()
    #: code after the loop (e.g. stores of scalar results)
    epilogue_ops: list[Operation] = field(default_factory=list)
    #: human description for reports
    description: str = ""

    @property
    def control_ops(self) -> list[Operation]:
        return [op for op in (self.incr_op, self.cmp_op, self.cj_op)
                if op is not None]

    @property
    def ops_per_iteration(self) -> int:
        """Sequential cycles per iteration (one op per node)."""
        return len(self.body_ops) + len(self.control_ops)

    def all_loop_ops(self) -> list[Operation]:
        return list(self.body_ops) + self.control_ops


def build_counted_loop(name: str, preheader: Sequence[Operation],
                       body: Sequence[Operation], counter: Reg | str,
                       bound: Operand | int, step: int = 1,
                       carried: Sequence[Reg | str] = (),
                       epilogue: Sequence[Operation] = (),
                       description: str = "") -> CountedLoop:
    """Assemble the canonical sequential loop graph.

    ``body`` operations read the counter directly; the builder appends
    the increment / compare / jump control tail and wires the back
    edge.  ``epilogue`` operations (scalar-result stores etc.) run
    after the loop exits.
    """
    k = counter if isinstance(counter, Reg) else Reg(counter)
    b = bound if isinstance(bound, (Reg, Imm)) else Imm(bound)
    builder = SequentialBuilder()
    pos = 0
    pre_ops: list[Operation] = []
    for op in preheader:
        op = _at(op, pos)
        pre_ops.append(op)
        builder.append(op)
        pos += 1
    body_nodes = []
    body_ops: list[Operation] = []
    header = None
    for op in body:
        op = _at(op, pos)
        body_ops.append(op)
        node = builder.append(op)
        if header is None:
            header = node.nid
        body_nodes.append(node)
        pos += 1
    cond = Reg(f"{k.name}.exit")
    incr = _at(add(k, k, step, name="inc"), pos)
    cmp_ = _at(cmp_ge(cond, k, b, name="cmp"), pos + 1)
    cj = _at(cjump(cond, name="br"), pos + 2)
    n_incr = builder.append(incr)
    if header is None:
        header = n_incr.nid
    builder.append(cmp_)
    cj_node = builder.append_cjump(cj, true_target=EXIT)
    builder.close_loop(header)
    pos += 3
    epi_ops: list[Operation] = []
    if epilogue:
        epi_builder = SequentialBuilder(builder.graph)
        epi_head: int | None = None
        for op in epilogue:
            op = _at(op, pos)
            pos += 1
            epi_ops.append(op)
            node = epi_builder.append(op)
            if epi_head is None:
                epi_head = node.nid
        true_leaf = [l for l in cj_node.leaves() if l.target == EXIT][0]
        builder.graph.retarget_leaf(cj_node.nid, true_leaf.leaf_id, epi_head)
    return CountedLoop(
        graph=builder.graph, name=name, preheader_ops=pre_ops,
        body_ops=body_ops, counter=k, bound=b, step=step, header=header,
        incr_op=incr, cmp_op=cmp_, cj_op=cj,
        carried_regs=frozenset(r if isinstance(r, Reg) else Reg(r)
                               for r in carried),
        epilogue_ops=epi_ops,
        description=description)


def _at(op: Operation, pos: int) -> Operation:
    """Stamp the textual position (the heuristic tie-breaker)."""
    if op.pos == pos:
        return op
    from dataclasses import replace

    return replace(op, pos=pos)
