"""Textual rendering of program graphs and schedule tables.

The paper communicates schedules as node x iteration tables (Figures 5,
9 and 13): each row is a VLIW instruction, each column an unwound
iteration, and cells list the operations of that iteration residing in
that instruction.  :func:`schedule_table` reproduces that layout.
"""

from __future__ import annotations

from io import StringIO
from typing import Callable, Sequence

from .cjtree import CJTree, EXIT, Leaf
from .graph import ProgramGraph
from .instruction import Instruction
from .operations import Operation


def op_cell_label(op: Operation) -> str:
    """Compact label used inside table cells (``a`` for the paper's ops)."""
    return op.name or f"#{op.tid}"


def render_tree(node: Instruction) -> str:
    """One-line rendering of a node's CJ tree, e.g. ``(c? n3 : n4)``."""

    def rec(t: CJTree) -> str:
        if isinstance(t, Leaf):
            return "EXIT" if t.target == EXIT else f"n{t.target}"
        cj = node.cjs[t.cj_uid]
        return f"({cj.label}? {rec(t.on_true)} : {rec(t.on_false)})"

    return rec(node.tree)


def render_node(node: Instruction, verbose: bool = False) -> str:
    """Multi-line rendering of one instruction."""
    out = StringIO()
    out.write(f"n{node.nid}: -> {render_tree(node)}\n")
    multi = len(node.leaf_ids()) > 1
    for op in node.ops.values():
        suffix = ""
        if multi and node.paths[op.uid] != node.all_paths:
            suffix = f"  @paths{sorted(node.paths[op.uid])}"
        body = repr(op) if verbose else f"  {op!r}"
        out.write(f"  {op!r}{suffix}\n" if not verbose else f"{body}{suffix}\n")
    return out.getvalue()


def render_graph(graph: ProgramGraph, order: Sequence[int] | None = None) -> str:
    """Whole-graph rendering in the given (default RPO) node order."""
    out = StringIO()
    for nid in (order if order is not None else graph.rpo()):
        out.write(render_node(graph.nodes[nid]))
    return out.getvalue()


def schedule_table(graph: ProgramGraph, order: Sequence[int] | None = None,
                   label: Callable[[Operation], str] = op_cell_label,
                   title: str = "Iteration") -> str:
    """Render the paper's node x iteration schedule table.

    Operations with ``iteration < 0`` land in a single "-" column.
    """
    nids = list(order if order is not None else graph.rpo())
    iters = sorted({op.iteration for _, op in graph.all_operations() if op.iteration >= 0})
    cols: list[int | None] = list(iters) if iters else [None]

    rows: list[list[str]] = []
    for nid in nids:
        node = graph.nodes[nid]
        row = [f"{nid}"]
        for it in cols:
            ops = [op for op in node.all_ops()
                   if (op.iteration == it if it is not None else op.iteration < 0)]
            ops.sort(key=lambda o: (label(o)))
            row.append("".join(label(o) for o in ops))
        rows.append(row)

    headers = ["Node"] + [("-" if c is None else str(c)) for c in cols]
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    out = StringIO()
    out.write(" " * widths[0] + "  " + title + "\n")
    out.write("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip() + "\n")
    for r in rows:
        out.write("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip() + "\n")
    return out.getvalue()


def to_dot(graph: ProgramGraph) -> str:
    """GraphViz rendering (nodes list their ops; edges follow the tree)."""
    out = StringIO()
    out.write("digraph program {\n  node [shape=box, fontname=monospace];\n")
    for nid, node in graph.nodes.items():
        labels = "\\n".join(repr(op).replace('"', "'") for op in node.all_ops())
        shape = ' style="bold"' if nid == graph.entry else ""
        out.write(f'  n{nid} [label="n{nid}\\n{labels}"{shape}];\n')
    out.write('  exit [label="EXIT", shape=ellipse];\n')
    for nid, node in graph.nodes.items():
        for leaf in node.leaves():
            tgt = "exit" if leaf.target == EXIT else f"n{leaf.target}"
            out.write(f"  n{nid} -> {tgt};\n")
    out.write("}\n")
    return out.getvalue()
