"""Virtual register namespace and operand model.

The VLIW computation model of Percolation Scheduling operates over a set
of named registers.  The paper assumes a machine register file with a
pool of *free* registers available for renaming; we model an unbounded
virtual register namespace and let :class:`RegisterFile` hand out fresh
names.  A finite pool can be requested to study renaming pressure.

Operands are either :class:`Reg` (a register read) or :class:`Imm` (an
immediate constant).  Both are immutable and hashable so they can be
used freely inside sets and as dict keys by the dependence machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Reg:
    """A register operand, identified by name.

    Names are arbitrary strings; the front end uses source-level names
    (``k``, ``q``) and the renamer derives fresh names (``%r17``).
    """

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True, slots=True)
class Imm:
    """An immediate (compile-time constant) operand."""

    value: float | int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.value)


#: Any value that may appear in an operation's source list.
Operand = Union[Reg, Imm]


class RegisterFile:
    """Allocator of fresh virtual register names.

    Percolation Scheduling removes write-live and move-past-read
    conflicts by *renaming*: the moved operation writes a free register
    and a copy is left behind (paper, section 2).  The register file is
    the source of those free registers.

    Parameters
    ----------
    prefix:
        Prefix for generated names.  Generated names never collide with
        source names as long as source names do not start with the
        prefix (the front end enforces this).
    limit:
        Optional maximum number of fresh registers; ``None`` (default)
        models an unbounded virtual namespace.  When the limit is
        exhausted :meth:`fresh` raises :class:`RegisterPressureError`,
        which makes renaming-dependent moves fail exactly as they would
        on a real machine with no free register.
    """

    def __init__(self, prefix: str = "%r", limit: int | None = None) -> None:
        self.prefix = prefix
        self.limit = limit
        self._next = 0

    def fresh(self) -> Reg:
        """Return a register never handed out before."""
        if self.limit is not None and self._next >= self.limit:
            raise RegisterPressureError(
                f"register file exhausted after {self.limit} fresh registers"
            )
        reg = Reg(f"{self.prefix}{self._next}")
        self._next += 1
        return reg

    @property
    def allocated(self) -> int:
        """Number of fresh registers handed out so far."""
        return self._next

    def clone(self) -> "RegisterFile":
        """An independent allocator continuing from the same counter."""
        rf = RegisterFile(self.prefix, self.limit)
        rf._next = self._next
        return rf


class RegisterPressureError(RuntimeError):
    """Raised when a bounded register file has no free register left."""
