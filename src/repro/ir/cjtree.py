"""Conditional-jump trees: the shape of an IBM VLIW instruction.

Per Figure 1 of the paper, a single IBM VLIW instruction is a *tree*:
internal nodes are conditional jumps, leaves name the possible successor
instructions, and operations are associated with the paths through the
tree on which they commit their results.

We give each leaf a stable integer identity (``leaf_id``) so that
operations can record the set of leaves (= paths) they are active on,
and so that control-flow edges ("leaf L of node A points at node B")
survive tree surgery such as ``move-cj``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Iterator, Union

#: Sentinel successor: falling off the program.
EXIT = -1

_leaf_counter = itertools.count(1)


def next_leaf_id() -> int:
    """Globally unique leaf id."""
    return next(_leaf_counter)


@dataclass(frozen=True, slots=True)
class Leaf:
    """A tree leaf: one control path, pointing at a successor node."""

    leaf_id: int
    target: int  # successor node id, or EXIT

    def retarget(self, target: int) -> "Leaf":
        return replace(self, target=target)


@dataclass(frozen=True, slots=True)
class Branch:
    """An internal tree node: a conditional jump splitting the path.

    ``cj_uid`` references a CJUMP operation stored in the owning
    instruction; ``on_true``/``on_false`` are the subtrees selected by
    the condition's value.
    """

    cj_uid: int
    on_true: "CJTree"
    on_false: "CJTree"


CJTree = Union[Leaf, Branch]


def make_leaf(target: int) -> Leaf:
    """A fresh leaf pointing at ``target``."""
    return Leaf(next_leaf_id(), target)


def iter_leaves(tree: CJTree) -> Iterator[Leaf]:
    """Yield leaves left-to-right (true side first)."""
    if isinstance(tree, Leaf):
        yield tree
    else:
        yield from iter_leaves(tree.on_true)
        yield from iter_leaves(tree.on_false)


def iter_branches(tree: CJTree) -> Iterator[Branch]:
    """Yield internal branch nodes in pre-order."""
    if isinstance(tree, Branch):
        yield tree
        yield from iter_branches(tree.on_true)
        yield from iter_branches(tree.on_false)


def leaf_ids(tree: CJTree) -> frozenset[int]:
    return frozenset(l.leaf_id for l in iter_leaves(tree))


def find_leaf(tree: CJTree, leaf_id: int) -> Leaf | None:
    for l in iter_leaves(tree):
        if l.leaf_id == leaf_id:
            return l
    return None


def replace_leaf(tree: CJTree, leaf_id: int, new_subtree: CJTree) -> CJTree:
    """Return a tree with the identified leaf replaced by ``new_subtree``.

    Raises ``KeyError`` if the leaf is absent.
    """
    res = _replace_leaf(tree, leaf_id, new_subtree)
    if res is None:
        raise KeyError(f"leaf {leaf_id} not in tree")
    return res


def _replace_leaf(tree: CJTree, leaf_id: int, new_subtree: CJTree) -> CJTree | None:
    if isinstance(tree, Leaf):
        return new_subtree if tree.leaf_id == leaf_id else None
    t = _replace_leaf(tree.on_true, leaf_id, new_subtree)
    if t is not None:
        return Branch(tree.cj_uid, t, tree.on_false)
    f = _replace_leaf(tree.on_false, leaf_id, new_subtree)
    if f is not None:
        return Branch(tree.cj_uid, tree.on_true, f)
    return None


def retarget_leaf(tree: CJTree, leaf_id: int, target: int) -> CJTree:
    """Return a tree with the identified leaf pointing at ``target``."""
    leaf = find_leaf(tree, leaf_id)
    if leaf is None:
        raise KeyError(f"leaf {leaf_id} not in tree")
    return replace_leaf(tree, leaf_id, leaf.retarget(target))


def retarget_all(tree: CJTree, old: int, new: int) -> CJTree:
    """Return a tree where every leaf targeting ``old`` targets ``new``."""
    if isinstance(tree, Leaf):
        return tree.retarget(new) if tree.target == old else tree
    return Branch(
        tree.cj_uid,
        retarget_all(tree.on_true, old, new),
        retarget_all(tree.on_false, old, new),
    )


def remove_branch(tree: CJTree, cj_uid: int, keep_true: bool) -> CJTree:
    """Return a tree with the branch for ``cj_uid`` collapsed to one side.

    Used when a conditional jump is deleted (e.g. its outcome became
    statically known or both sides converged).
    """
    if isinstance(tree, Leaf):
        return tree
    if tree.cj_uid == cj_uid:
        return tree.on_true if keep_true else tree.on_false
    return Branch(
        tree.cj_uid,
        remove_branch(tree.on_true, cj_uid, keep_true),
        remove_branch(tree.on_false, cj_uid, keep_true),
    )


def subtree_of(tree: CJTree, cj_uid: int) -> Branch | None:
    """Find the branch node testing ``cj_uid``."""
    for b in iter_branches(tree):
        if b.cj_uid == cj_uid:
            return b
    return None


def refresh_leaf_ids(tree: CJTree) -> tuple[CJTree, dict[int, int]]:
    """Deep-copy a tree with fresh leaf ids.

    Returns the new tree and the old->new leaf id mapping.  Used when a
    node is duplicated (node splitting), since leaf ids must stay unique
    graph-wide.
    """
    mapping: dict[int, int] = {}

    def rec(t: CJTree) -> CJTree:
        if isinstance(t, Leaf):
            nl = make_leaf(t.target)
            mapping[t.leaf_id] = nl.leaf_id
            return nl
        return Branch(t.cj_uid, rec(t.on_true), rec(t.on_false))

    return rec(tree), mapping


def depth(tree: CJTree) -> int:
    """Number of branches on the longest root-to-leaf path."""
    if isinstance(tree, Leaf):
        return 0
    return 1 + max(depth(tree.on_true), depth(tree.on_false))


def leaves_under(tree: CJTree, cj_uid: int, side_true: bool) -> frozenset[int]:
    """Leaf ids under one side of the branch testing ``cj_uid``."""
    b = subtree_of(tree, cj_uid)
    if b is None:
        raise KeyError(f"branch {cj_uid} not in tree")
    return leaf_ids(b.on_true if side_true else b.on_false)
