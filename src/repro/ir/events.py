"""Typed mutation events of the :class:`~repro.ir.graph.ProgramGraph`.

Every mutation method of the graph emits exactly one event describing
what changed (plus one event per inner mutation of a composite, muted
while the composite runs).  Observers subscribe with
``graph.subscribe(callback)`` and receive each event *after* the
mutation completed, so handlers may inspect the graph's post-state.

The event stream is the contract that replaces the old "bump
``graph.version``" rule: analyses no longer key caches on a counter and
rebuild from scratch -- they patch their indexes in place from the
events (see :mod:`repro.analysis.incremental`) and fall back to a full
rebuild only on events they cannot patch.  A mutation path that cannot
describe itself precisely must emit :class:`BulkMutation` (what
``graph._touch()`` now does), which tells every observer to rebuild --
correct by construction, merely slower.

Event vocabulary:

``OpAdded`` / ``OpRemoved`` / ``OpReplaced`` / ``PathsWidened``
    Operation-level mutations.  These leave the control-flow structure
    untouched, which is the hot-path insight: the vast majority of
    percolation hops are pure op motion along existing edges, so the
    RPO and region indexes stay valid across them.
``NodeInserted`` / ``NodeRemoved``
    A node appeared (empty, or adopted with content) / was removed
    outright.  Inserted nodes are unreachable until a later edge event
    links them; removed nodes are already unreachable.
``NodeBypassed``
    An empty single-leaf node was spliced out of the graph
    (``delete_empty_node``): its predecessors now point directly at
    ``succ``.  Reverse postorder minus the node is exactly the new
    reverse postorder, so structural indexes can splice instead of
    rebuilding -- this is the most frequent structural event under
    percolation (nodes empty out constantly as operations move up).
``EdgeRetargeted`` / ``EntryChanged`` / ``InstructionReplaced``
    Arbitrary structural changes (leaf retargeting, entry motion,
    direct CJ-tree surgery announced via ``note_tree_change``).  Not
    patchable in general; observers mark structure-derived indexes
    dirty and rebuild lazily.
``BulkMutation``
    Coarse fallback: anything may have changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .instruction import Instruction
    from .operations import Operation


@dataclass(frozen=True)
class GraphEvent:
    """Base class of all program-graph mutation events."""


@dataclass(frozen=True)
class NodeInserted(GraphEvent):
    """A node joined the graph (``new_node`` / ``adopt``)."""

    nid: int


@dataclass(frozen=True)
class NodeRemoved(GraphEvent):
    """An (unreachable) node was removed outright; carries its content."""

    nid: int
    node: "Instruction"


@dataclass(frozen=True)
class NodeBypassed(GraphEvent):
    """An empty fall-through node was spliced out; preds now reach ``succ``."""

    nid: int
    succ: int


@dataclass(frozen=True)
class EdgeRetargeted(GraphEvent):
    """Leaves of ``nid`` that pointed at ``old`` now point at ``new``."""

    nid: int
    old: int
    new: int


@dataclass(frozen=True)
class EntryChanged(GraphEvent):
    """The graph entry moved."""

    old: int | None
    new: int | None


@dataclass(frozen=True)
class InstructionReplaced(GraphEvent):
    """Node ``nid``'s instruction changed wholesale (direct tree surgery)."""

    nid: int


@dataclass(frozen=True)
class OpAdded(GraphEvent):
    """A regular operation was attached to node ``nid``."""

    nid: int
    op: "Operation"


@dataclass(frozen=True)
class OpRemoved(GraphEvent):
    """A regular operation was detached from node ``nid``."""

    nid: int
    op: "Operation"


@dataclass(frozen=True)
class OpReplaced(GraphEvent):
    """Operation ``old`` of node ``nid`` was swapped for ``new`` in place."""

    nid: int
    old: "Operation"
    new: "Operation"


@dataclass(frozen=True)
class PathsWidened(GraphEvent):
    """An existing op of ``nid`` became active on additional paths."""

    nid: int
    uid: int


@dataclass(frozen=True)
class BulkMutation(GraphEvent):
    """Coarse fallback: an undescribed mutation happened; rebuild."""

    reason: str = ""
