"""Builders for sequential program graphs.

Percolation Scheduling "start[s] with a program wherein each instruction
contains a single operation" (section 2).  :class:`SequentialBuilder`
constructs exactly that: a chain of one-op nodes, with helpers for
attaching conditional jumps and loop back edges.

:class:`LoopNest` describes a single counted loop (the shape of every
Livermore kernel used in the evaluation): pre-header code, a body, an
induction variable and a trip count.  It is the hand-off format between
the front end and the pipeliner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .cjtree import EXIT
from .graph import ProgramGraph
from .instruction import Instruction
from .operations import Operation
from .registers import Reg


class SequentialBuilder:
    """Builds a chain of single-operation instructions."""

    def __init__(self, graph: ProgramGraph | None = None) -> None:
        self.graph = graph if graph is not None else ProgramGraph()
        self._head: int | None = None
        self._tail: Instruction | None = None

    @property
    def head(self) -> int | None:
        return self._head

    @property
    def tail(self) -> Instruction | None:
        return self._tail

    def append(self, op: Operation) -> Instruction:
        """Append one operation in its own node at the chain's end."""
        node = self.graph.new_node(EXIT)
        if op.is_cjump:
            raise ValueError("use append_cjump for conditional jumps")
        node.add_op(op)
        self._link(node)
        return node

    def append_cjump(self, op: Operation, true_target: int = EXIT,
                     false_target: int = EXIT) -> Instruction:
        """Append a node holding only a conditional jump.

        The *false* side is the fall-through edge that a subsequent
        :meth:`append` will link to.
        """
        from .cjtree import Branch, make_leaf

        node = self.graph.new_node(EXIT)
        tl, fl = make_leaf(true_target), make_leaf(false_target)
        node.tree = Branch(op.uid, tl, fl)
        node.cjs[op.uid] = op
        self.graph.note_tree_change(node.nid)
        self._link(node)
        return node

    def append_many(self, ops: Iterable[Operation]) -> list[Instruction]:
        return [self.append(op) for op in ops]

    def _link(self, node: Instruction) -> None:
        if self._head is None:
            self._head = node.nid
            if self.graph.entry is None:
                self.graph.set_entry(node.nid)
        if self._tail is not None:
            # The tail's unique fall-through leaf points at the new node.
            leaves = self._tail.leaves()
            fall = [l for l in leaves if l.target == EXIT]
            if not fall:
                raise ValueError("cannot append after a fully-targeted node")
            # Prefer the rightmost EXIT leaf: for a freshly appended cjump
            # that is the false (fall-through) side.
            self.graph.retarget_leaf(self._tail.nid, fall[-1].leaf_id, node.nid)
        self._tail = node

    def close_loop(self, back_to: int) -> None:
        """Point the tail's fall-through leaf back at ``back_to``."""
        assert self._tail is not None
        fall = [l for l in self._tail.leaves() if l.target == EXIT]
        if not fall:
            raise ValueError("tail has no fall-through leaf")
        self.graph.retarget_leaf(self._tail.nid, fall[-1].leaf_id, back_to)

    def resume(self, node: Instruction) -> None:
        """Continue appending from ``node``'s open (EXIT) leaf.

        Needed for nested loops: after :meth:`close_loop` wires an inner
        back edge, the chain's tail has no fall-through left, so the
        build resumes from the inner exit jump -- its still-open EXIT
        leaf is where control lands when the inner loop finishes.
        """
        if not any(l.target == EXIT for l in node.leaves()):
            raise ValueError(f"node {node.nid} has no open leaf to resume from")
        self._tail = node


@dataclass
class LoopNest:
    """A single counted loop in sequential (one op per node) form.

    Attributes
    ----------
    graph:
        The program graph holding pre-header, body and (optional) exit
        code.
    header:
        First body node; the loop's back edge targets it.
    body_ops:
        The loop-body operations, in source order, one per node.  The
        loop-control compare + conditional jump are included when the
        loop is built with explicit control (``with_control=True``).
    counter:
        The induction register, stepped by ``step`` each iteration.
    trip_count:
        Symbolic trip count (used by the unwinder and simulator).
    latch:
        The node holding the back edge.
    exit_node:
        First node after the loop, or ``None``.
    carried:
        Template ids of operations that the dependence analysis found to
        be loop-carried (filled in lazily; empty until analyzed).
    """

    graph: ProgramGraph
    header: int
    body_ops: list[Operation]
    counter: Reg | None = None
    step: int = 1
    trip_count: int | None = None
    latch: int | None = None
    exit_node: int | None = None
    carried: set[int] = field(default_factory=set)

    def body_nodes(self) -> list[int]:
        """Body node ids in control order (header..latch)."""
        order: list[int] = []
        nid = self.header
        seen = set()
        while nid not in seen and nid in self.graph.nodes:
            order.append(nid)
            seen.add(nid)
            if nid == self.latch:
                break
            succs = self.graph.successors(nid)
            if not succs:
                break
            nid = succs[0]
        return order


def straightline_graph(ops: Sequence[Operation]) -> ProgramGraph:
    """A fresh graph holding ``ops`` as a chain of one-op nodes."""
    b = SequentialBuilder()
    b.append_many(ops)
    return b.graph


def simple_loop(ops: Sequence[Operation], iterations: int | None = None,
                counter: Reg | None = None, step: int = 1) -> LoopNest:
    """A loop whose body is ``ops`` (no explicit control), back edge last->first.

    This is the representation used for the paper's worked examples,
    where loop control is left implicit and only the data-dependence
    structure matters.
    """
    b = SequentialBuilder()
    nodes = b.append_many(ops)
    b.close_loop(nodes[0].nid)
    return LoopNest(
        graph=b.graph,
        header=nodes[0].nid,
        body_ops=list(ops),
        counter=counter,
        step=step,
        trip_count=iterations,
        latch=nodes[-1].nid,
    )
