"""Intermediate representation: operations, VLIW instructions, program graphs.

This package implements the VLIW computation model of the paper's
section 2: program graphs whose nodes are VLIW instructions -- sets of
single-cycle operations structured by a conditional-jump tree (IBM VLIW
model) -- and whose edges represent control flow.
"""

from .builder import LoopNest, SequentialBuilder, simple_loop, straightline_graph
from .cjtree import Branch, CJTree, EXIT, Leaf, make_leaf
from .graph import ProgramGraph
from .instruction import Instruction
from .loops import (
    CountedLoop,
    LoopProgram,
    WhileLoop,
    build_counted_loop,
    build_while_loop,
    concat_graphs,
)
from .operations import (
    MemRef,
    Operation,
    OpKind,
    add,
    cjump,
    cmp_ge,
    cmp_lt,
    const,
    copy,
    div,
    load,
    make_binary,
    mul,
    nop,
    store,
    sub,
)
from .registers import Imm, Operand, Reg, RegisterFile, RegisterPressureError
from .render import render_graph, render_node, schedule_table, to_dot

__all__ = [
    "Branch", "CJTree", "CountedLoop", "EXIT", "Imm", "Instruction", "Leaf",
    "LoopNest", "LoopProgram", "MemRef", "Operand", "Operation", "OpKind",
    "ProgramGraph", "Reg", "RegisterFile", "RegisterPressureError",
    "SequentialBuilder", "WhileLoop",
    "add", "build_counted_loop", "build_while_loop", "cjump", "cmp_ge",
    "cmp_lt", "concat_graphs", "const", "copy", "div", "load",
    "make_binary", "make_leaf", "mul", "nop", "render_graph", "render_node",
    "schedule_table", "simple_loop", "store", "straightline_graph", "sub",
    "to_dot",
]
