"""Ablations quantifying the paper's three design arguments.

* **A -- Unifiable-ops cost (section 3.1).**  The closure bookkeeping of
  Unifiable-ops scheduling grows super-linearly with program size while
  GRiP's Moveable-ops stay trivial.  Measured as closure-element
  touches vs candidate-set builds on growing unwound loops.
* **B -- gap prevention (section 3.3).**  Without Gapless-move the
  per-iteration spread of the slope-mismatched A..G loop grows without
  bound; with it the spread is flat.  (Detailed figure bench in
  test_fig9_13; here the claim is swept across unroll factors.)
* **C -- speculation (section 1).**  "GRiP always allows speculative
  scheduling"; disabling it on branchy code costs schedule density when
  resources are plentiful.
"""

from __future__ import annotations

import random

from benchmarks.conftest import write_result
from repro.machine import INFINITE_RESOURCES, MachineConfig
from repro.pipelining import main_chain, unwind_implicit
from repro.reporting import comparison_table
from repro.scheduling import (
    AlphabeticalHeuristic,
    GRiPScheduler,
    UnifiableOpsScheduler,
)
from repro.simulator import check_equivalent
from repro.workloads.paper_examples import ag_body
from repro.workloads.synthetic import branchy_program


class TestAblationAUnifiableCost:
    def test_closure_cost_grows_faster_than_moveable(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows = []
        prev_ratio = 0.0
        for unroll in (2, 4, 8):
            u1 = unwind_implicit(ag_body(), unroll)
            r_uni = UnifiableOpsScheduler(
                MachineConfig(fus=4), AlphabeticalHeuristic()
            ).schedule(u1.graph, ranking_ops=u1.ops)
            u2 = unwind_implicit(ag_body(), unroll)
            r_grip = GRiPScheduler(
                MachineConfig(fus=4), AlphabeticalHeuristic(),
                gap_prevention=False
            ).schedule(u2.graph, ranking_ops=u2.ops)
            closure = r_uni.unifiable_stats.closure_ops
            builds = r_grip.candidate_builds
            rows.append([f"x{unroll}", 7 * unroll, closure, builds,
                         closure / max(1, builds)])
            ratio = closure / max(1, builds)
            assert ratio >= prev_ratio * 0.9  # monotone-ish growth
            prev_ratio = ratio
        text = comparison_table(
            ["unroll", "ops", "closure touches (Unifiable)",
             "set builds (GRiP)", "ratio"],
            rows, "Ablation A: set-maintenance cost")
        write_result("ablation_a_cost.txt", text)
        print("\n" + text)


class TestAblationBGapPrevention:
    @staticmethod
    def spread(u):
        chain = main_chain(u.graph)
        first, last = {}, {}
        for idx, nid in enumerate(chain):
            for op in u.graph.nodes[nid].all_ops():
                if op.iteration >= 0:
                    first.setdefault(op.iteration, idx)
                    last[op.iteration] = idx
        mids = [i for i in first if 1 <= i <= max(first) - 3]
        return max(last[i] - first[i] for i in mids) if mids else 0

    def test_spread_growth_vs_bounded(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows = []
        for unroll in (6, 10, 14):
            off = unwind_implicit(ag_body(), unroll)
            GRiPScheduler(INFINITE_RESOURCES, AlphabeticalHeuristic(),
                          gap_prevention=False).schedule(
                off.graph, ranking_ops=off.ops)
            on = unwind_implicit(ag_body(), unroll)
            GRiPScheduler(INFINITE_RESOURCES, AlphabeticalHeuristic(),
                          gap_prevention=True).schedule(
                on.graph, ranking_ops=on.ops)
            rows.append([unroll, self.spread(off), self.spread(on)])
        text = comparison_table(
            ["unroll", "max spread (no prevention)",
             "max spread (Gapless-move)"],
            rows, "Ablation B: iteration spread")
        write_result("ablation_b_gaps.txt", text)
        print("\n" + text)
        # Without prevention the spread grows with the unroll factor...
        assert rows[-1][1] > rows[0][1]
        # ...with prevention it stays below the unconstrained spread.
        assert rows[-1][2] < rows[-1][1]


class TestAblationCSpeculation:
    def test_speculation_buys_density(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows = []
        for depth in (2, 3, 4):
            g_spec = branchy_program(random.Random(depth), depth=depth)
            orig = g_spec.clone()
            GRiPScheduler(MachineConfig(fus=8), gap_prevention=False,
                          allow_speculation=True).schedule(g_spec)
            check_equivalent(orig, g_spec, seeds=(0,))
            g_none = branchy_program(random.Random(depth), depth=depth)
            orig2 = g_none.clone()
            GRiPScheduler(MachineConfig(fus=8), gap_prevention=False,
                          allow_speculation=False).schedule(g_none)
            check_equivalent(orig2, g_none, seeds=(0,))
            rows.append([depth, len(g_spec.reachable()),
                         len(g_none.reachable())])
        text = comparison_table(
            ["diamonds", "rows (speculative)", "rows (no speculation)"],
            rows, "Ablation C: speculative scheduling")
        write_result("ablation_c_speculation.txt", text)
        print("\n" + text)
        assert all(spec <= none for _, spec, none in rows)
        assert any(spec < none for _, spec, none in rows)
