"""Figures 9 and 13: growing gaps vs the gapless schedule (A..G loop).

Figure 9 shows dependence-only scheduling tearing iterations apart: the
slope-2 recurrence family (d/e) falls further behind its iteration's
slope-1 ops every iteration, so no row ever repeats and Perfect
Pipelining cannot converge.  Figure 13 shows GRiP with Gapless-move
producing a convergent two-rows-per-iteration kernel.

Metric: **iteration spread** = (last row holding iteration i's ops) -
(first row holding them).  Without gap prevention the spread grows
linearly in i; with it the spread stays bounded.

Regenerated in ``results/fig9_13.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.ir.render import schedule_table
from repro.machine import INFINITE_RESOURCES
from repro.pipelining import graph_throughput, main_chain, unwind_implicit
from repro.scheduling import AlphabeticalHeuristic, GRiPScheduler
from repro.workloads.paper_examples import ag_body

UNROLL = 10


def compact(gap_prevention: bool):
    u = unwind_implicit(ag_body(), UNROLL)
    GRiPScheduler(INFINITE_RESOURCES, AlphabeticalHeuristic(),
                  gap_prevention=gap_prevention).schedule(
        u.graph, ranking_ops=u.ops)
    return u


def iteration_spreads(u) -> dict[int, int]:
    chain = main_chain(u.graph)
    first: dict[int, int] = {}
    last: dict[int, int] = {}
    for idx, nid in enumerate(chain):
        for op in u.graph.nodes[nid].all_ops():
            if op.iteration >= 0:
                first.setdefault(op.iteration, idx)
                last[op.iteration] = idx
    return {i: last[i] - first[i] for i in first}


class TestFigure9:
    def test_gaps_grow_without_prevention(self):
        """The d/e family lags by ~1 more row per iteration."""
        spreads = iteration_spreads(compact(False))
        early = spreads[1]
        late = spreads[UNROLL - 3]
        assert late >= early + (UNROLL - 4) * 0.5, spreads

    def test_no_convergence_without_prevention(self):
        from repro.pipelining import find_pattern

        u = compact(False)
        assert find_pattern(u, u.graph) is None


class TestFigure13:
    def test_spread_bounded_with_prevention(self):
        spreads_off = iteration_spreads(compact(False))
        spreads_on = iteration_spreads(compact(True))
        mid = range(2, UNROLL - 3)
        worst_on = max(spreads_on[i] for i in mid)
        worst_off = max(spreads_off[i] for i in mid)
        assert worst_on < worst_off, (spreads_on, spreads_off)

    def test_throughput_matches_recurrence_bound(self):
        """The slope-2 cycle bounds II at 2 cycles/iteration; the
        gapless schedule sustains it."""
        u = compact(True)
        est = graph_throughput(u, u.graph)
        assert est is not None
        assert est.ii == pytest.approx(2.0, abs=0.5)

    def test_render_artifact(self, benchmark):
        u_off = benchmark.pedantic(lambda: compact(False), rounds=1,
                                   iterations=1)
        u_on = compact(True)
        text = ("Figure 9 (no gap prevention): iteration spreads "
                f"{iteration_spreads(u_off)}\n\n"
                + schedule_table(u_off.graph, order=main_chain(u_off.graph))
                + "\n\nFigure 13 (Gapless-move): iteration spreads "
                f"{iteration_spreads(u_on)}\n\n"
                + schedule_table(u_on.graph, order=main_chain(u_on.graph)))
        write_result("fig9_13.txt", text)
        print("\n" + text)
