"""Shared fixtures and result-capture helpers for the benchmark suite.

Every bench regenerates one table or figure of the paper.  Rendered
artifacts are written under ``results/`` so EXPERIMENTS.md can reference
them; pytest-benchmark timings additionally capture the *scheduling
cost* side of the paper's efficiency claims.

Environment knob: set ``REPRO_FULL=1`` for paper-scale unroll factors
(slower, tighter steady states); the default keeps CI-fast sizes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")


def unroll_for(fus: int) -> int:
    """Unroll factor per FU count (paper-scale when REPRO_FULL=1)."""
    return max(12, (4 if FULL else 3) * fus)


def write_result(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text)
    return path


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
