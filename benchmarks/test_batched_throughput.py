"""Backend bench: batched differential checking vs the scalar flow.

The batched VM exists to make *verification* cheap: one encoded bundle
program, N independent initial states, state-major numpy rows.  This
bench is that claim's receipt -- on scheduled Livermore kernels the
16-lane :func:`differential_check_batched` must sustain at least
``MIN_STATE_SPEEDUP``x the states/sec of the scalar per-seed
:func:`differential_check` loop, while agreeing with it bit-for-bit on
the walker-pinned reference lanes (the equivalence suite in
``tests/backend/test_batched_vm.py`` owns the fidelity claim; this
file owns the throughput claim).

The ceiling at equal wall-clock is lanes/ref-seeds = 16/3 = 5.33x and
the measured ratio on a warm process is ~5.5x (the batched flow never
pays the exec-based scalar fast-path compile, and the memoized cell
defaults amortize over 16 lanes instead of 3).  The asserted floor is
deliberately lower: CI machines jitter, and a regression we care about
-- e.g. losing the lockstep fast path -- drops the ratio under 2x,
far below any plausible noise band.

Measured rates are timing-dependent and intentionally not committed
(see benchmarks/test_backend_vm.py for the precedent).
"""

from __future__ import annotations

import time

import pytest

from repro.backend import differential_check, differential_check_batched
from repro.machine import MachineConfig
from repro.pipelining import schedule_loop
from repro.workloads import livermore

UNROLL = 12
KERNELS = ("LL1", "LL7", "LL12")
REF_SEEDS = (0, 1, 2)
LANES = 16
MIN_STATE_SPEEDUP = 2.0


def _best_seconds(fn, reps: int = 5) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def throughput_rows():
    rows = []
    machine = MachineConfig(fus=4)
    for name in KERNELS:
        loop = livermore.kernel(name, UNROLL)
        res = schedule_loop(loop, machine, unroll=UNROLL)
        g = res.unwound.graph
        # Warm both flows once so lazy compiles and the memoized cell
        # defaults are paid outside the timed region for *both* sides.
        differential_check(g, machine, seeds=REF_SEEDS)
        differential_check_batched(g, machine, lanes=LANES)
        t_scalar = _best_seconds(
            lambda: differential_check(g, machine, seeds=REF_SEEDS))
        t_batched = _best_seconds(
            lambda: differential_check_batched(g, machine, lanes=LANES))
        rows.append((name,
                     len(REF_SEEDS) / t_scalar,
                     LANES / t_batched))
    return rows


class TestBatchedThroughput:
    def test_batched_states_per_sec_floor(self, throughput_rows):
        for name, scalar_sps, batched_sps in throughput_rows:
            assert batched_sps >= MIN_STATE_SPEEDUP * scalar_sps, (
                f"{name}: batched check at {batched_sps:.0f} states/s is "
                f"under {MIN_STATE_SPEEDUP}x the scalar flow's "
                f"{scalar_sps:.0f} states/s")

    def test_batched_covers_more_states(self, throughput_rows):
        # The ratio claim is only meaningful if the batched flow also
        # checks strictly more states per case than the scalar flow.
        assert LANES > len(REF_SEEDS)
        for name, _, _ in throughput_rows:
            rep = differential_check_batched(
                livermore_graph(name), MachineConfig(fus=4), lanes=LANES)
            assert rep.checked_lanes == LANES
            assert list(rep.ref_seeds) == list(REF_SEEDS)


def livermore_graph(name: str):
    loop = livermore.kernel(name, UNROLL)
    res = schedule_loop(loop, MachineConfig(fus=4), unroll=UNROLL)
    return res.unwound.graph
