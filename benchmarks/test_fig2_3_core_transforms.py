"""Figures 2 and 3: the move-op and move-cj core transformations.

Micro-benchmarks demonstrating (and timing) the two semantics-
preserving primitives on the paper's minimal shapes: moving an
operation up one instruction, and moving a conditional jump up one
instruction with node splitting of the source.
"""

from __future__ import annotations

from repro.ir import (
    EXIT,
    ProgramGraph,
    RegisterFile,
    add,
    cjump,
    cmp_lt,
    store,
    straightline_graph,
    sub,
)
from repro.ir.cjtree import Branch, make_leaf
from repro.machine import MachineConfig
from repro.percolation import move_cj, move_op
from repro.simulator import check_equivalent


def moveop_case():
    ops = [add("a", "x", 1, name="A"), sub("b", "y", 1, name="B"),
           store("out", "a", offset=0), store("out", "b", offset=1)]
    return straightline_graph(ops)


def movecj_case():
    g = ProgramGraph()
    n0 = g.new_node()
    n0.add_op(cmp_lt("c", "a", "b"))
    g.set_entry(n0.nid)
    n1 = g.new_node()
    n1.add_op(add("w", "a", 1))
    g.retarget_leaf(n0.nid, n0.leaves()[0].leaf_id, n1.nid)
    cj = cjump("c")
    n2 = g.new_node()
    tl, fl = make_leaf(EXIT), make_leaf(EXIT)
    n2.tree = Branch(cj.uid, tl, fl)
    n2.cjs[cj.uid] = cj
    g.note_tree_change(n2.nid)
    g.retarget_leaf(n1.nid, n1.leaves()[0].leaf_id, n2.nid)
    nt = g.new_node()
    nt.add_op(store("o", "w", offset=0))
    ne = g.new_node()
    ne.add_op(store("o", "a", offset=0))
    g.retarget_leaf(n2.nid, tl.leaf_id, nt.nid)
    g.retarget_leaf(n2.nid, fl.leaf_id, ne.nid)
    return g, n1.nid, n2.nid, cj.uid


class TestFigure2MoveOp:
    def test_semantics_and_shape(self):
        g = moveop_case()
        orig = g.clone()
        order = g.rpo()
        uid = next(iter(g.nodes[order[1]].ops))
        out = move_op(g, order[1], order[0], uid,
                      machine=MachineConfig(fus=4), regfile=RegisterFile())
        assert out.moved
        assert len(g.nodes) == len(orig.nodes) - 1
        check_equivalent(orig, g)

    def test_bench_move_op(self, benchmark):
        def run():
            g = moveop_case()
            order = g.rpo()
            uid = next(iter(g.nodes[order[1]].ops))
            return move_op(g, order[1], order[0], uid,
                           machine=MachineConfig(fus=4),
                           regfile=RegisterFile())

        out = benchmark(run)
        assert out.moved


class TestFigure3MoveCJ:
    def test_semantics_and_shape(self):
        g, to_nid, from_nid, cj_uid = movecj_case()
        orig = g.clone()
        out = move_cj(g, from_nid, to_nid, cj_uid,
                      machine=MachineConfig(fus=4), regfile=RegisterFile())
        assert out.moved
        g.check()
        assert len(g.nodes[to_nid].cjs) == 1
        check_equivalent(orig, g)

    def test_bench_move_cj(self, benchmark):
        def run():
            g, to_nid, from_nid, cj_uid = movecj_case()
            return move_cj(g, from_nid, to_nid, cj_uid,
                           machine=MachineConfig(fus=4),
                           regfile=RegisterFile())

        out = benchmark(run)
        assert out.moved
