"""Backend bench: bundle-VM throughput vs the tree-walking simulator.

The bundle backend exists to make executing scheduled code cheap, so
this bench is the claim's receipt: on unrolled Livermore kernels the
flat bundle VM must sustain at least 5x the tree-walker's committed
ops/sec, while agreeing with it cycle-for-cycle (the differential
check runs first).  The rendered artifact reports realized cycles next
to the schedule-length speedups, including a multi-cycle-latency
machine where realized > scheduled.

The committed ``results/backend_vm.txt`` contains only *deterministic*
content (cycle counts, schedule lengths): measured ops/sec rates jitter
per run and used to churn the file on every commit, so the throughput
floor is asserted by the test and recorded qualitatively.
:func:`render_report` is a pure function of the realized-cycle rows;
``test_result_file_idempotent`` pins that regeneration is byte-stable.
"""

from __future__ import annotations

import time

import pytest

from repro.backend import BundleVM, differential_check
from repro.ir.operations import OpKind
from repro.machine import MachineConfig
from repro.pipelining import schedule_loop
from repro.reporting import RealizedRow, realized_cycles_table
from repro.simulator.check import initial_state, input_registers
from repro.simulator.interp import run
from repro.workloads import livermore

from conftest import RESULTS_DIR, write_result

# Snapshot the committed artifact at import time, BEFORE the fixture
# regenerates it: comparing the fixture's own output to the file it
# just wrote would be tautological.
_COMMITTED_PATH = RESULTS_DIR / "backend_vm.txt"
_COMMITTED = (_COMMITTED_PATH.read_text()
              if _COMMITTED_PATH.exists() else None)

UNROLL = 24
KERNELS = ("LL1", "LL7", "LL12")
MIN_SPEEDUP = 5.0

THROUGHPUT_NOTE = (
    f"Throughput floor: bundle VM >= {MIN_SPEEDUP:.1f}x the tree-walker's\n"
    f"committed ops/sec on {', '.join(KERNELS)} -- asserted each run by\n"
    "benchmarks/test_backend_vm.py::TestVMThroughput; measured rates are\n"
    "timing-dependent and intentionally not committed.")


def render_report(table_rows) -> str:
    """Render the committed artifact (pure in the deterministic rows)."""
    return (realized_cycles_table(table_rows) + "\n\n"
            + THROUGHPUT_NOTE + "\n")


def _best_seconds(fn, reps: int = 5) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def throughput_rows():
    rows = []
    table_rows = []
    machine = MachineConfig(fus=4)
    for name in KERNELS:
        loop = livermore.kernel(name, UNROLL)
        res = schedule_loop(loop, machine, unroll=UNROLL, measure=True)
        g = res.unwound.graph
        rep = differential_check(g, machine, seeds=(0,))
        vm = BundleVM(rep.program)
        inputs = input_registers(g)
        st = initial_state(0, inputs)
        init = dict(st.regs)
        t_tree = _best_seconds(lambda: run(g, initial_state(0, inputs)))
        t_vm = _best_seconds(
            lambda: vm.run(init_regs=init, mem_default=st.mem_default))
        ref = run(g, initial_state(0, inputs))
        tree_ops = ref.ops_committed / t_tree
        vm_ops = rep.ops_committed[0] / t_vm
        rows.append((name, tree_ops, vm_ops))
        table_rows.append(RealizedRow(
            kernel=name, machine=str(machine),
            schedule_length=rep.program.schedule_length,
            interp_cycles=rep.interp_cycles[-1],
            vm_steps=rep.vm_steps[-1],
            realized_cycles=rep.realized_cycles,
            sched_speedup=res.speedup,
            realized_speedup=(res.measured_seq_cycles / rep.realized_cycles
                              if res.measured_seq_cycles else None)))
    # One multi-cycle-latency row: realized cycles exceed bundle count.
    lat_machine = MachineConfig(fus=4, latencies={OpKind.MUL: 3,
                                                  OpKind.LOAD: 2})
    loop = livermore.kernel("LL7", UNROLL)
    res = schedule_loop(loop, MachineConfig(fus=4), unroll=UNROLL,
                        measure=True)
    rep = differential_check(res.unwound.graph, lat_machine, seeds=(0,))
    table_rows.append(RealizedRow(
        kernel="LL7+lat", machine="Machine(4 FUs, lat)",
        schedule_length=rep.program.schedule_length,
        interp_cycles=rep.interp_cycles[-1],
        vm_steps=rep.vm_steps[-1],
        realized_cycles=rep.realized_cycles,
        sched_speedup=res.speedup,
        realized_speedup=(res.measured_seq_cycles / rep.realized_cycles
                          if res.measured_seq_cycles else None)))
    write_result("backend_vm.txt", render_report(table_rows))
    return rows, table_rows


class TestVMThroughput:
    def test_vm_beats_tree_walker_5x(self, throughput_rows):
        rows, _ = throughput_rows
        for name, tree_ops, vm_ops in rows:
            assert vm_ops >= MIN_SPEEDUP * tree_ops, (
                f"{name}: bundle VM at {vm_ops:.0f} ops/s is under "
                f"{MIN_SPEEDUP}x the tree-walker's {tree_ops:.0f} ops/s")

    def test_realized_cycles_reported_alongside_schedule(self,
                                                         throughput_rows):
        _, table_rows = throughput_rows
        for row in table_rows:
            assert row.realized_cycles >= row.vm_steps
            assert row.schedule_length > 0
        lat_row = table_rows[-1]
        assert lat_row.realized_cycles > lat_row.vm_steps

    def test_vm_matches_tree_walker_cycle_for_cycle(self, throughput_rows):
        _, table_rows = throughput_rows
        for row in table_rows:
            assert row.vm_steps == row.interp_cycles

    def test_result_file_idempotent(self, throughput_rows):
        """Regenerating results/backend_vm.txt must be byte-identical:
        the emitter is a pure function of deterministic cycle counts
        (it used to embed measured ops/sec, churning every commit).
        The comparison is against the *pre-run* snapshot of the
        committed file, so a stale artifact fails here rather than
        being silently overwritten."""
        _, table_rows = throughput_rows
        rendered = render_report(table_rows)
        assert _COMMITTED == rendered, (
            "results/backend_vm.txt was stale; this run regenerated "
            "it -- commit the refreshed artifact")
        # No timing-derived content may leak into the artifact.
        assert "ops/sec on" in rendered  # the qualitative note ...
        assert "best of" not in rendered  # ... not the measured rates
        second = write_result("backend_vm.txt", rendered)
        assert second.read_text() == rendered
