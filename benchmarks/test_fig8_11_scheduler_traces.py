"""Figures 8 and 11: worked scheduling traces, Unifiable-ops vs GRiP.

Both figures walk the A..G example with alphabetical priority.  The
observable contrast reproduced here:

* **Unifiable-ops** (Fig. 8) only moves operations certain to reach the
  node being scheduled, so no operation ever parks at an intermediate
  node: after scheduling node *n*, every op is either at/above *n* or
  untouched at its origin depth.
* **GRiP** (Fig. 11) lets everything moveable compact below the current
  node ("while scheduling n, compaction can occur on the entire
  subgraph dominated by n"), so intermediate nodes fill up along the
  way -- the source of its efficiency.

Regenerated in ``results/fig8_11.txt``.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.ir.render import schedule_table
from repro.machine import MachineConfig
from repro.pipelining import unwind_implicit
from repro.scheduling import (
    AlphabeticalHeuristic,
    GRiPScheduler,
    UnifiableOpsScheduler,
)
from repro.workloads.paper_examples import ag_body

MACHINE = MachineConfig(fus=4)


def unwound():
    return unwind_implicit(ag_body(), 4)


class TestFigure8Unifiable:
    def test_unifiable_schedules_ag(self):
        u = unwound()
        res = UnifiableOpsScheduler(MACHINE, AlphabeticalHeuristic()
                                    ).schedule(u.graph, ranking_ops=u.ops)
        u.graph.check()
        assert res.unifiable_stats.scheduled_ops > 0

    def test_budget_respected(self):
        u = unwound()
        UnifiableOpsScheduler(MACHINE, AlphabeticalHeuristic()
                              ).schedule(u.graph, ranking_ops=u.ops)
        for node in u.graph.nodes.values():
            assert MACHINE.fits(node)

    def test_closure_cost_tracked(self):
        u = unwound()
        res = UnifiableOpsScheduler(MACHINE, AlphabeticalHeuristic()
                                    ).schedule(u.graph, ranking_ops=u.ops)
        assert res.unifiable_stats.set_builds > 0
        assert res.unifiable_stats.closure_ops > 0


class TestFigure11GRiP:
    def test_grip_compacts_more_cheaply(self):
        """GRiP needs fewer candidate-set constructions than the
        Unifiable-ops closures cost, on identical input."""
        u1 = unwound()
        r_uni = UnifiableOpsScheduler(MACHINE, AlphabeticalHeuristic()
                                      ).schedule(u1.graph,
                                                 ranking_ops=u1.ops)
        u2 = unwound()
        r_grip = GRiPScheduler(MACHINE, AlphabeticalHeuristic(),
                               gap_prevention=False
                               ).schedule(u2.graph, ranking_ops=u2.ops)
        # Identical machine/ranking: GRiP's schedule is at least as
        # compact (Unifiable-ops guarantees travel, not density).
        assert len(u2.graph.rpo()) <= len(u1.graph.rpo()) + 1

    def test_render_traces(self, benchmark):
        u1 = unwound()
        benchmark.pedantic(
            lambda: UnifiableOpsScheduler(MACHINE, AlphabeticalHeuristic()
                                          ).schedule(u1.graph,
                                                     ranking_ops=u1.ops),
            rounds=1, iterations=1)
        u2 = unwound()
        GRiPScheduler(MACHINE, AlphabeticalHeuristic(),
                      gap_prevention=False).schedule(u2.graph,
                                                     ranking_ops=u2.ops)
        text = ("Figure 8 (Unifiable-ops, 4 FUs, alphabetical):\n"
                + schedule_table(u1.graph)
                + "\nFigure 11 (GRiP, same input):\n"
                + schedule_table(u2.graph))
        write_result("fig8_11.txt", text)
        print("\n" + text)


class TestSchedulerCostBenchmarks:
    def test_bench_unifiable(self, benchmark):
        def run():
            u = unwound()
            return UnifiableOpsScheduler(MACHINE, AlphabeticalHeuristic()
                                         ).schedule(u.graph,
                                                    ranking_ops=u.ops)

        benchmark.pedantic(run, rounds=1, iterations=1)

    def test_bench_grip(self, benchmark):
        def run():
            u = unwound()
            return GRiPScheduler(MACHINE, AlphabeticalHeuristic(),
                                 gap_prevention=False
                                 ).schedule(u.graph, ranking_ops=u.ops)

        benchmark.pedantic(run, rounds=1, iterations=1)
