"""Ablation D: the section 3.4 ranking heuristic vs a naive ordering.

The paper: "the speedups shown in Table 1 do not necessarily represent
the maximum potential of GRiP, but rather are intended to convey a
notion of how well GRiP can perform even with the simple operation
ordering defined in section 3.4."  This bench quantifies the heuristic's
value: GRiP with the chain-length ranking vs plain source order on a
Table-1 subset.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.machine import MachineConfig
from repro.pipelining import schedule_loop
from repro.reporting import arithmetic_mean, comparison_table
from repro.scheduling import PaperHeuristic, SourceOrderHeuristic
from repro.workloads import livermore

LOOPS = ("LL1", "LL3", "LL7", "LL10", "LL12")
FUS = 4
UNROLL = 12


class TestHeuristicAblation:
    def test_paper_heuristic_no_worse_on_average(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows = []
        paper_vals, naive_vals = [], []
        for name in LOOPS:
            r_paper = schedule_loop(
                livermore.kernel(name, UNROLL), MachineConfig(fus=FUS),
                unroll=UNROLL, heuristic=PaperHeuristic(), measure=False)
            r_naive = schedule_loop(
                livermore.kernel(name, UNROLL), MachineConfig(fus=FUS),
                unroll=UNROLL, heuristic=SourceOrderHeuristic(),
                measure=False)
            sp = r_paper.speedup
            sn = r_naive.speedup
            rows.append([name,
                         f"{sp:.2f}" if sp else "n/c",
                         f"{sn:.2f}" if sn else "n/c"])
            if sp:
                paper_vals.append(sp)
            if sn:
                naive_vals.append(sn)
        text = comparison_table(
            ["Loop", "section-3.4 heuristic", "source order"],
            rows, f"Ablation D: ranking heuristic (GRiP @ {FUS} FUs)")
        write_result("ablation_d_heuristic.txt", text)
        print("\n" + text)
        assert arithmetic_mean(paper_vals) >= \
            arithmetic_mean(naive_vals) - 0.15
