"""Table 1: observed speedups, GRiP vs POST, LL1-LL14 x {2,4,8} FUs.

Regenerates the paper's headline table.  Shape criteria asserted:

* GRiP never loses to POST (the paper's "In all cases GRiP performs no
  worse than POST");
* at 2 FUs both systems sit essentially at 2.0 (paper means 2.0 / 2.0);
* the aggregate Mean/WHM ordering GRiP > POST holds at 4 and 8 FUs;
* recurrence-bound loops (LL5, LL6, LL13) stay flat from 4 to 8 FUs
  while vectorizable loops (LL1, LL7, LL9) scale to ~8.

The rendered table is written to ``results/table1.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import unroll_for, write_result
from repro.machine import MachineConfig
from repro.pipelining import schedule_loop, pipeline_loop_post
from repro.reporting import SpeedupTable, arithmetic_mean
from repro.workloads import livermore

FU_CONFIGS = (2, 4, 8)

#: paper's Table 1 for side-by-side reporting in results/table1.txt
PAPER_TABLE1 = {
    "LL1": ((2.0, 2.0), (4.0, 3.5), (7.9, 7.0)),
    "LL2": ((2.0, 1.9), (3.8, 3.6), (7.3, 6.9)),
    "LL3": ((2.0, 1.8), (4.0, 3.0), (8.0, 4.5)),
    "LL4": ((2.0, 2.0), (4.3, 3.9), (8.4, 5.9)),
    "LL5": ((2.0, 2.2), (4.4, 3.7), (5.5, 5.5)),
    "LL6": ((2.0, 1.8), (3.6, 2.8), (3.6, 3.3)),
    "LL7": ((2.0, 1.9), (4.0, 3.9), (7.9, 7.6)),
    "LL8": ((2.0, 1.9), (3.4, 3.1), (4.3, 4.0)),
    "LL9": ((2.0, 2.0), (4.0, 3.9), (7.9, 7.7)),
    "LL10": ((2.0, 2.0), (4.0, 2.9), (7.1, 3.6)),
    "LL11": ((2.3, 2.3), (4.5, 4.5), (8.9, 8.9)),
    "LL12": ((2.0, 1.8), (4.0, 3.0), (8.0, 4.5)),
    "LL13": ((2.1, 1.9), (3.0, 2.7), (3.0, 3.0)),
    "LL14": ((1.9, 1.9), (3.7, 3.2), (4.8, 4.5)),
}


@pytest.fixture(scope="module")
def table() -> SpeedupTable:
    """Run the full sweep once; all assertions read from it."""
    t = SpeedupTable(fu_configs=FU_CONFIGS, systems=("GRiP", "POST"))
    for name in livermore.kernel_names():
        for fus in FU_CONFIGS:
            unroll = unroll_for(fus)
            loop_g = livermore.kernel(name, unroll)
            g = schedule_loop(loop_g, MachineConfig(fus=fus),
                              unroll=unroll, measure=False)
            loop_p = livermore.kernel(name, unroll)
            p = pipeline_loop_post(loop_p, MachineConfig(fus=fus),
                                   unroll=unroll)
            weight = loop_g.ops_per_iteration
            t.add(name, fus, "GRiP", g.speedup, weight=weight)
            t.add(name, fus, "POST", p.speedup, weight=weight)
    text = t.render("Table 1: Observed Speed-up (reproduction)")
    paper_rows = [
        [name, *("%.1f/%.1f" % pair for pair in PAPER_TABLE1[name])]
        for name in livermore.kernel_names()
    ]
    from repro.reporting import comparison_table

    text += "\n" + comparison_table(
        ["Loop", "2FU G/P", "4FU G/P", "8FU G/P"], paper_rows,
        "Paper's Table 1 (for comparison)")
    write_result("table1.txt", text)
    print("\n" + text)
    return t


class TestTable1Shape:
    def test_all_cells_converged(self, table):
        for name, row in table.cells.items():
            for key, v in row.items():
                assert v is not None, (name, key)

    def test_grip_never_worse_than_post(self, table):
        for name, row in table.cells.items():
            for fus in FU_CONFIGS:
                g, p = row[(fus, "GRiP")], row[(fus, "POST")]
                assert g >= p - 1e-9, (name, fus, g, p)

    def test_two_fu_essentially_optimal(self, table):
        """Paper: 'for 2 and 4 functional units, GRiP results are
        essentially optimal' -- mean 2.0 at 2 FUs."""
        col = [v for v in table.column(2, "GRiP") if v is not None]
        assert arithmetic_mean(col) == pytest.approx(2.0, abs=0.1)

    def test_four_fu_mean_near_paper(self, table):
        col = [v for v in table.column(4, "GRiP") if v is not None]
        assert arithmetic_mean(col) == pytest.approx(3.9, abs=0.35)

    def test_eight_fu_mean_near_paper(self, table):
        """Paper mean 6.6: GRiP fills resources subject to the loops'
        own parallelism limits."""
        col = [v for v in table.column(8, "GRiP") if v is not None]
        assert arithmetic_mean(col) == pytest.approx(6.6, abs=0.8)

    def test_post_gap_opens_with_resources(self, table):
        """POST's deficit widens as FUs grow (paper: 0.0 -> 0.5 -> 1.1)."""
        gaps = []
        for fus in FU_CONFIGS:
            g = arithmetic_mean([v for v in table.column(fus, "GRiP")])
            p = arithmetic_mean([v for v in table.column(fus, "POST")])
            gaps.append(g - p)
        assert gaps[0] <= gaps[1] + 0.05 <= gaps[2] + 0.10

    def test_recurrence_loops_flat(self, table):
        for name in ("LL5", "LL6", "LL13"):
            s4 = table.cells[name][(4, "GRiP")]
            s8 = table.cells[name][(8, "GRiP")]
            assert s8 <= s4 + 0.25, name

    def test_vectorizable_loops_scale(self, table):
        for name in ("LL1", "LL7", "LL9"):
            s8 = table.cells[name][(8, "GRiP")]
            assert s8 >= 7.0, name

    def test_ties_where_paper_ties(self, table):
        """LL5 and LL13 tie GRiP=POST at 8 FUs in the paper."""
        for name in ("LL5", "LL13"):
            g = table.cells[name][(8, "GRiP")]
            p = table.cells[name][(8, "POST")]
            assert g == pytest.approx(p, abs=0.35), name


class TestTable1SchedulingCost:
    """pytest-benchmark timing of one representative cell.

    Requesting the ``table`` fixture here guarantees the full Table-1
    sweep (and ``results/table1.txt``) regenerates even under
    ``--benchmark-only``, which skips the plain shape tests.
    """

    def test_bench_grip_ll1_4fu(self, benchmark, table):
        def run():
            loop = livermore.kernel("LL1", 12)
            return schedule_loop(loop, MachineConfig(fus=4), unroll=12,
                                 measure=False)

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        assert res.speedup is not None
        assert table.cells  # sweep ran and populated the table
