"""Figures 5 and 6: the A,B,C loop -- simple vs Perfect Pipelining.

The paper's fully-specified example: a loop of operations A,B,C where
each depends on the one before and A carries a dependence on itself.

* Figure 5 overlaps 4 iterations in 6 instructions; retaining the back
  edge ("simple pipelining") gives speedup 12/6 = **2**.
* Figure 6's Perfect Pipelining converges to the repeating ``c b a``
  row -- one iteration per cycle, speedup **3** -- which "any fixed
  unwinding" strictly cannot reach.

Regenerated in ``results/fig5_6.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.ir.render import schedule_table
from repro.machine import INFINITE_RESOURCES
from repro.pipelining import find_pattern, unwind_implicit
from repro.scheduling import AlphabeticalHeuristic, GRiPScheduler
from repro.workloads.paper_examples import abc_body

SEQ_CYCLES_PER_ITER = 3  # a, b, c


def compact(unroll: int):
    u = unwind_implicit(abc_body(), unroll)
    GRiPScheduler(INFINITE_RESOURCES, AlphabeticalHeuristic(),
                  gap_prevention=True).schedule(u.graph, ranking_ops=u.ops)
    return u


class TestFigure5:
    def test_four_iterations_in_six_rows(self):
        """Figure 5's table: 4 iterations overlap into 6 instructions."""
        u = compact(4)
        rows = [nid for nid in u.graph.rpo()
                if not u.graph.nodes[nid].is_empty()]
        assert len(rows) == 6

    def test_simple_pipelining_speedup_two(self):
        u = compact(4)
        rows = len([n for n in u.graph.rpo()])
        simple_speedup = (4 * SEQ_CYCLES_PER_ITER) / rows
        assert simple_speedup == pytest.approx(2.0)

    def test_staircase_shape(self):
        """Row i holds a@i together with b@i-1 and c@i-2 (the paper's
        'cba' diagonal)."""
        u = compact(4)
        order = u.graph.rpo()
        by_row = [sorted((op.name, op.iteration)
                         for op in u.graph.nodes[nid].all_ops())
                  for nid in order]
        assert by_row[0] == [("a", 0)]
        assert by_row[1] == [("a", 1), ("b", 0)]
        assert by_row[2] == [("a", 2), ("b", 1), ("c", 0)]
        assert by_row[3] == [("a", 3), ("b", 2), ("c", 1)]


class TestFigure6:
    def test_perfect_pipelining_speedup_three(self):
        """The kernel repeats every row with shift 1: II=1, speedup 3."""
        u = compact(8)
        pat = find_pattern(u, u.graph)
        assert pat is not None
        assert pat.period == 1 and pat.shift == 1
        assert SEQ_CYCLES_PER_ITER / pat.initiation_interval == \
            pytest.approx(3.0)

    def test_any_fixed_unwinding_strictly_below_three(self):
        """Paper: simple pipelining 'yields a speedup that is strictly
        less than 3' for every fixed unwinding."""
        for k in (2, 4, 8, 16):
            u = compact(k)
            rows = len(u.graph.rpo())
            assert (k * SEQ_CYCLES_PER_ITER) / rows < 3.0

    def test_render_artifact(self, benchmark):
        u = benchmark.pedantic(lambda: compact(8), rounds=1, iterations=1)
        pat = find_pattern(u, u.graph)
        text = ("Figure 5/6 reproduction: A,B,C loop\n\n"
                + schedule_table(u.graph)
                + f"\nkernel: {pat}\n"
                + f"simple pipelining speedup (4 iters): 2.0\n"
                + f"perfect pipelining speedup: "
                + f"{SEQ_CYCLES_PER_ITER / pat.initiation_interval:.1f}\n")
        write_result("fig5_6.txt", text)
        print("\n" + text)
